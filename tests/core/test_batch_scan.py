"""Tests for the vectorized batch match pipeline.

The batch scanner must be *value-identical* to the per-query planner
(:func:`plan_query_scan` + :func:`topk_from_counts`), and equivalent to the
exact Algorithm-1 reference up to the reference's own tie identity at the
k-th count (Theorem 3.1 pins counts and threshold, not which tied id the
Robin Hood table happens to retain).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_scan import plan_batch_scan
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.inverted_index import InvertedIndex, ragged_slices
from repro.core.load_balance import LoadBalanceConfig, split_span
from repro.core.match_count import match_counts_all
from repro.core.posting import build_postings
from repro.core.scan_kernel import build_match_launch, plan_query_scan
from repro.core.selection import (
    audit_threshold_from_counts,
    audit_threshold_from_counts_batch,
    derive_cpq_cost,
    derive_cpq_cost_batch,
    topk_from_counts,
    topk_from_counts_batch,
)
from repro.core.types import Corpus, Query
from repro.gpu.specs import TITAN_X

# ----------------------------------------------------------------------
# hypothesis strategies

corpora = st.lists(st.lists(st.integers(0, 15), max_size=6), min_size=1, max_size=25)
query_batches = st.lists(
    st.lists(  # one query = a list of items
        st.lists(st.integers(0, 25), max_size=4),  # items may be empty or miss the index
        max_size=4,  # queries may have no items at all
    ),
    min_size=1,
    max_size=6,
)
lb_configs = st.sampled_from(
    [None, LoadBalanceConfig(max_sublist_len=3), LoadBalanceConfig(max_sublist_len=5, max_lists_per_block=3)]
)


def make_batch(raw_queries):
    return [Query(items=items) for items in raw_queries]


# ----------------------------------------------------------------------
# CSR layout


class TestCsrLayout:
    def test_span_csr_matches_split_span(self):
        corpus = Corpus([[1, 2, 3], [1, 2], [1], [1], [1], [1], [1]])
        postings = build_postings(corpus)
        for max_len in (1, 2, 3, 4096):
            offsets, starts, ends = postings.span_csr(max_len)
            cursor = 0
            for i in range(postings.num_lists):
                expected = split_span(
                    int(postings.offsets[i]), int(postings.offsets[i + 1]), max_len
                )
                got = list(zip(starts[offsets[i] : offsets[i + 1]], ends[offsets[i] : offsets[i + 1]]))
                assert [(int(s), int(e)) for s, e in got] == expected
                cursor += len(expected)
            assert cursor == int(offsets[-1])

    def test_keyword_rows_dense_and_sparse_lookup(self):
        # Compact universe -> dense table; huge keywords -> binary search.
        for keywords in ([1, 2, 5], [1, 2, 10**9]):
            index = InvertedIndex.build(Corpus([keywords]))
            probe = np.asarray([0, 1, 2, 5, 10**9, 7])
            rows, found = index.keyword_rows(probe)
            for kw, row, ok in zip(probe, rows, found):
                if int(kw) in keywords:
                    assert ok
                    assert int(index.keyword_array[row]) == int(kw)
                else:
                    assert not ok

    def test_keyword_rows_empty_index(self):
        index = InvertedIndex.build(Corpus([[]]))
        rows, found = index.keyword_rows(np.asarray([0, 3]))
        assert not found.any()
        assert rows.size == 2

    def test_ragged_slices(self):
        out = ragged_slices(np.asarray([5, 0, 9]), np.asarray([2, 0, 3]))
        assert out.tolist() == [5, 6, 9, 10, 11]
        assert ragged_slices(np.asarray([]), np.asarray([])).size == 0

    def test_compat_dict_api_matches_csr(self):
        corpus = Corpus([[1, 7], [1], [1, 9]])
        index = InvertedIndex.build(corpus, load_balance=LoadBalanceConfig(max_sublist_len=2))
        for kw in (1, 7, 9, 1234):
            spans = index.spans_for_keyword(kw)
            rows, found = index.keyword_rows(np.asarray([kw]))
            if not found[0]:
                assert spans == []
                continue
            span_rows, _ = index.span_rows_for_keyword_rows(rows)
            assert spans == [
                (int(s), int(e))
                for s, e in zip(index.span_starts[span_rows], index.span_ends[span_rows])
            ]
            assert np.array_equal(index.gather(spans), index.gather_span_rows(span_rows))


# ----------------------------------------------------------------------
# batch plans == per-query plans


class TestPlanEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(corpora, query_batches, st.integers(1, 5), lb_configs)
    def test_plans_match_per_query_planner(self, raw_objects, raw_queries, k, lb):
        index = InvertedIndex.build(Corpus(raw_objects), load_balance=lb)
        queries = make_batch(raw_queries)
        batch = plan_batch_scan(index, queries, k)
        for qi, query in enumerate(queries):
            ref = plan_query_scan(index, query, qi, k)
            plan = batch.plans[qi]
            assert np.array_equal(plan.block_sizes, ref.block_sizes)
            assert np.array_equal(plan.counts, ref.counts)
            assert plan.cpq_cost == ref.cpq_cost
            assert np.array_equal(plan.counts[plan.counts > 0], plan.hot_counts)

    @settings(max_examples=25, deadline=None)
    @given(corpora, query_batches, st.integers(1, 4))
    def test_match_launch_statistics_identical(self, raw_objects, raw_queries, k):
        index = InvertedIndex.build(Corpus(raw_objects))
        queries = make_batch(raw_queries)
        plans_batch = plan_batch_scan(index, queries, k).plans
        plans_ref = [plan_query_scan(index, q, i, k) for i, q in enumerate(queries)]
        for use_cpq in (True, False):
            a = build_match_launch(plans_batch, TITAN_X, 256, use_cpq)
            b = build_match_launch(plans_ref, TITAN_X, 256, use_cpq)
            assert np.array_equal(a.block_items, b.block_items)
            for field in (
                "bytes_read",
                "bytes_written",
                "uncoalesced_bytes",
                "atomic_ops",
                "atomic_conflicts",
                "divergent_warps",
            ):
                assert getattr(a, field) == getattr(b, field)

    @pytest.mark.parametrize("max_fused_cells", [1, 7, 64, 10**9])
    def test_tiling_is_invisible(self, max_fused_cells):
        rng = np.random.default_rng(3)
        index = InvertedIndex.build(
            Corpus([rng.integers(0, 30, size=8) for _ in range(50)])
        )
        queries = [Query.from_keywords(rng.integers(0, 40, size=6)) for _ in range(9)]
        batch = plan_batch_scan(index, queries, 3, max_fused_cells=max_fused_cells, select=True)
        for qi, query in enumerate(queries):
            ref = plan_query_scan(index, query, qi, 3)
            assert np.array_equal(batch.plans[qi].counts, ref.counts)
            assert batch.plans[qi].cpq_cost == ref.cpq_cost
            expected = topk_from_counts(ref.counts, 3)
            got = batch.results[qi]
            assert np.array_equal(got.ids, expected.ids)
            assert np.array_equal(got.counts, expected.counts)
            assert got.threshold == expected.threshold

    def test_dense_stream_uses_per_row_counting(self):
        # Everyone matches everything: stream >> matrix cells exercises the
        # per-row bincount branch.
        corpus = Corpus([[1, 2, 3]] * 10)
        index = InvertedIndex.build(corpus)
        queries = [Query(items=[[1], [2], [3]])] * 4
        batch = plan_batch_scan(index, queries, 2, max_fused_cells=20, select=True)
        for qi in range(4):
            assert batch.plans[qi].counts.tolist() == [3] * 10
            assert batch.results[qi].counts.tolist() == [3, 3]
            assert batch.results[qi].ids.tolist() == [0, 1]


# ----------------------------------------------------------------------
# batched selection == scalar selection


class TestBatchedSelection:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(0, 12),
        st.integers(1, 7),
        st.integers(0, 6),
        st.integers(0, 10**6),
    )
    def test_matrix_helpers_match_scalar(self, n_queries, n_objects, k, max_count, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, max_count + 1, size=(n_queries, n_objects)).astype(np.int64)
        at_batch = audit_threshold_from_counts_batch(matrix, k)
        cost_batch = derive_cpq_cost_batch(matrix, k)
        topk_batch = topk_from_counts_batch(matrix, k)
        for qi in range(n_queries):
            assert int(at_batch[qi]) == audit_threshold_from_counts(matrix[qi], k)
            assert cost_batch[qi] == derive_cpq_cost(matrix[qi], k)
            expected = topk_from_counts(matrix[qi], k)
            assert np.array_equal(topk_batch[qi].ids, expected.ids)
            assert np.array_equal(topk_batch[qi].counts, expected.counts)
            assert topk_batch[qi].threshold == expected.threshold

    def test_ties_at_kth_count_break_by_ascending_id(self):
        matrix = np.asarray([[2, 5, 2, 2, 0, 2]], dtype=np.int64)
        result = topk_from_counts_batch(matrix, 3)[0]
        # id 1 wins outright; the four count-2 ties fill by ascending id.
        assert result.as_pairs() == [(1, 5), (0, 2), (2, 2)]
        assert result.threshold == 2

    def test_empty_matrix(self):
        assert all(len(r) == 0 for r in topk_from_counts_batch(np.empty((3, 0)), 4))
        assert audit_threshold_from_counts_batch(np.empty((3, 0)), 4).tolist() == [1, 1, 1]


# ----------------------------------------------------------------------
# engine: vectorized batch path vs the Algorithm-1 reference


def _run_pair(raw_objects, raw_queries, k, lb, use_load_balance):
    corpus = Corpus(raw_objects)
    queries = make_batch(raw_queries)
    config = GenieConfig(k=k, load_balance=lb if use_load_balance else None)
    fast = GenieEngine(config=config).fit(corpus)
    slow = GenieEngine(config=config.with_(reference_cpq=True)).fit(corpus)
    return corpus, queries, fast, slow


class TestEngineEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(corpora, query_batches, st.integers(1, 5), lb_configs)
    def test_results_match_reference_cpq(self, raw_objects, raw_queries, k, lb):
        """The batch path reproduces the reference's counts and threshold.

        Ids above the threshold must agree exactly; at the threshold the
        reference's Robin Hood table may retain different tied ids, so ties
        are checked for validity (correct count) rather than identity.
        Thresholds are compared only when the corpus holds at least ``k``
        objects: below that the vectorized path reports ``MC_min(k, n)``
        while the reference Gate keeps the paper's ``MC_k = 0`` (both
        pre-date this pipeline and agree on the returned objects).
        """
        corpus, queries, fast, slow = _run_pair(raw_objects, raw_queries, k, lb, True)
        results_fast = fast.query(queries)
        results_slow = slow.query(queries)
        for query, a, b in zip(queries, results_fast, results_slow):
            assert sorted(a.counts.tolist(), reverse=True) == sorted(
                b.counts.tolist(), reverse=True
            )
            if len(corpus) >= k:
                assert a.threshold == b.threshold
                sure_a = a.ids[a.counts > a.threshold]
                sure_b = b.ids[b.counts > b.threshold]
                assert np.array_equal(sure_a, sure_b)
            # Every reported entry (ties included) carries its true count.
            true_counts = match_counts_all(query, corpus)
            for result in (a, b):
                for obj, count in result.as_pairs():
                    assert int(true_counts[obj]) == count

    @settings(max_examples=20, deadline=None)
    @given(corpora, query_batches, st.integers(1, 4))
    def test_match_kernel_cost_identical_to_reference_run(self, raw_objects, raw_queries, k):
        """Both paths charge the device the exact same match-stage kernel."""
        _, queries, fast, slow = _run_pair(raw_objects, raw_queries, k, None, False)
        fast.query(queries)
        slow.query(queries)
        stats_fast = [s for s in fast.device.kernel_log if s.name == "genie_match"]
        stats_slow = [s for s in slow.device.kernel_log if s.name == "genie_match"]
        assert len(stats_fast) == len(stats_slow) == 1
        a, b = stats_fast[0], stats_slow[0]
        for field in (
            "blocks",
            "ops",
            "bytes_read",
            "bytes_written",
            "uncoalesced_bytes",
            "atomic_ops",
            "atomic_conflicts",
            "divergent_warps",
            "elapsed_seconds",
        ):
            assert getattr(a, field) == getattr(b, field)
