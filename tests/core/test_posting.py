"""Tests for postings-list construction."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.posting import build_postings
from repro.core.types import Corpus


class TestBuildPostings:
    def test_simple(self):
        postings = build_postings(Corpus([[1, 2], [2, 3]]))
        assert postings.keywords.tolist() == [1, 2, 3]
        assert postings.list_for(0).tolist() == [0]
        assert postings.list_for(1).tolist() == [0, 1]
        assert postings.list_for(2).tolist() == [1]

    def test_lists_sorted_by_object_id(self):
        postings = build_postings(Corpus([[5], [5], [5]]))
        assert postings.list_for(0).tolist() == [0, 1, 2]

    def test_empty_corpus(self):
        postings = build_postings(Corpus([]))
        assert postings.num_lists == 0
        assert postings.total_entries == 0

    def test_corpus_with_empty_objects(self):
        postings = build_postings(Corpus([[], [7], []]))
        assert postings.keywords.tolist() == [7]
        assert postings.list_for(0).tolist() == [1]

    def test_total_entries(self):
        corpus = Corpus([[1, 2, 3], [1]])
        assert build_postings(corpus).total_entries == 4

    def test_build_ops_positive(self):
        assert build_postings(Corpus([[1]])).build_ops > 0

    @given(
        st.lists(
            st.lists(st.integers(0, 30), max_size=8),
            min_size=1,
            max_size=20,
        )
    )
    def test_postings_invert_the_corpus(self, raw_objects):
        corpus = Corpus(raw_objects)
        postings = build_postings(corpus)
        # Every (object, keyword) pair appears in exactly that keyword's list.
        for obj_id, keywords in enumerate(corpus):
            for kw in keywords:
                idx = int(np.searchsorted(postings.keywords, kw))
                assert postings.keywords[idx] == kw
                assert obj_id in postings.list_for(idx)
        # And total size matches.
        assert postings.total_entries == corpus.total_entries
