"""REPRO007 fixtures: unbounded retries and unseeded jitter are flagged."""


class TestUnboundedRetry:
    def test_while_true_retry_flagged(self, findings_for):
        findings = findings_for(
            """
            def fetch(part):
                while True:
                    try:
                        return part.scan()
                    except IOError:
                        continue
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO007"]
        assert "unbounded retry loop" in findings[0].message

    def test_while_one_retry_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            def fetch(part):
                while 1:
                    try:
                        return part.scan()
                    except IOError:
                        pass
            """
        ) == ["REPRO007"]

    def test_bounded_for_retry_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            def fetch(part, max_attempts):
                for attempt in range(max_attempts):
                    try:
                        return part.scan()
                    except IOError:
                        continue
                raise TimeoutError(part)
            """,
            path="repro/core/fixture.py",
        ) == ["REPRO002"]  # the builtin raise, not the loop

    def test_bounded_while_retry_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            def fetch(part, budget):
                attempt = 0
                while attempt < budget:
                    try:
                        return part.scan()
                    except IOError:
                        attempt += 1
            """
        ) == []

    def test_while_true_that_escapes_on_failure_is_fine(self, rule_ids_for):
        # Every handler propagates — the loop never retries a failure,
        # so it is an event loop, not a retry loop.
        assert rule_ids_for(
            """
            def pump(queue):
                while True:
                    try:
                        queue.step()
                    except StopIteration:
                        break
            """
        ) == []

    def test_while_true_without_try_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            def drain(queue):
                while True:
                    item = queue.pop()
                    if item is None:
                        break
            """
        ) == []

    def test_nested_function_try_does_not_make_retry_loop(self, rule_ids_for):
        # The resuming handler lives in a nested def; the enclosing
        # while True is not retrying anything.
        assert rule_ids_for(
            """
            def pump(queue):
                while True:
                    def safe(item):
                        try:
                            return item.go()
                        except IOError:
                            return None
                    if queue.feed(safe) is None:
                        break
            """
        ) == []

    def test_mixed_handlers_one_resuming_is_retry(self, rule_ids_for):
        assert rule_ids_for(
            """
            def fetch(part):
                while True:
                    try:
                        return part.scan()
                    except ValueError:
                        raise
                    except IOError:
                        continue
            """
        ) == ["REPRO007"]


class TestRetryJitter:
    def test_stdlib_random_backoff_flagged(self, findings_for):
        findings = findings_for(
            """
            import random

            def fetch(part, max_attempts):
                for attempt in range(max_attempts):
                    try:
                        return part.scan()
                    except IOError:
                        part.backoff(random.uniform(0, 2 ** attempt))
            """
        )
        ids = sorted(f.rule_id for f in findings)
        assert "REPRO007" in ids  # REPRO001 also fires; both point here
        jitter = [f for f in findings if f.rule_id == "REPRO007"]
        assert len(jitter) == 1
        assert "stdlib random" in jitter[0].message

    def test_unseeded_default_rng_backoff_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            import numpy as np

            def fetch(part, max_attempts):
                for attempt in range(max_attempts):
                    try:
                        return part.scan()
                    except IOError:
                        part.backoff(np.random.default_rng().uniform())
            """
        ) == ["REPRO001", "REPRO007"]

    def test_seeded_context_rng_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            import numpy as np

            def fetch(part, seed, max_attempts):
                for attempt in range(max_attempts):
                    try:
                        return part.scan()
                    except IOError:
                        rng = np.random.default_rng([seed, part.position, attempt])
                        part.backoff(rng.uniform())
            """
        ) == []

    def test_unseeded_rng_outside_retry_loop_is_repro001_only(self, rule_ids_for):
        assert rule_ids_for(
            """
            import numpy as np

            def noise():
                return np.random.default_rng().uniform()
            """
        ) == ["REPRO001"]
