"""REPRO006 fixtures: seed parameters must be threaded, never re-derived."""


class TestUnusedSeed:
    def test_public_unused_seed_flagged(self, findings_for):
        findings = findings_for(
            """
            def sample(n, seed=0):
                return list(range(n))
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO006"]
        assert "seed" in findings[0].message

    def test_unused_suffixed_seed_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            def shuffle(items, query_seed=7):
                return sorted(items)
            """
        ) == ["REPRO006"]

    def test_threaded_seed_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            import numpy as np

            def sample(n, seed=0):
                rng = np.random.default_rng(seed)
                return rng.integers(0, 10, size=n)
            """
        ) == []

    def test_stored_seed_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            class Runner:
                def __init__(self, seed):
                    self.seed = seed
            """
        ) == []

    def test_private_helper_is_exempt(self, rule_ids_for):
        # Underscore helpers may accept-and-ignore during refactors; the
        # rule polices the public surface.
        assert rule_ids_for(
            """
            def _shim(seed):
                return 0
            """
        ) == []

    def test_protocol_stub_is_exempt(self, rule_ids_for):
        assert rule_ids_for(
            """
            class Source:
                def draw(self, n, seed):
                    raise NotImplementedError
            """
        ) == []


class TestRederivedSeed:
    def test_constant_rng_inside_seeded_fn_flagged(self, findings_for):
        findings = findings_for(
            """
            import numpy as np

            def sample(n, seed):
                rng = np.random.default_rng(0)
                return rng.integers(0, 10, size=n) + seed
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO006"]
        assert "default_rng" in findings[0].message

    def test_derived_substream_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            import numpy as np

            def sample(n, seed):
                rng = np.random.default_rng([seed, 3])
                return rng.integers(0, 10, size=n)
            """
        ) == []

    def test_nested_fn_with_own_seed_is_fine(self, rule_ids_for):
        # The inner def owns its own seed parameter; the outer signature
        # must not be charged for the inner call.
        assert rule_ids_for(
            """
            import numpy as np

            def outer(seed):
                def inner(sub_seed):
                    return np.random.default_rng(sub_seed)
                return inner(seed)
            """
        ) == []
