"""REPRO002 fixtures: builtin raises, swallowed excepts, runtime asserts."""


class TestRaises:
    def test_builtin_raise_flagged(self, findings_for):
        findings = findings_for(
            """
            def check(n):
                if n < 0:
                    raise ValueError("negative")
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO002"]
        assert "ValueError" in findings[0].message

    def test_taxonomy_raise_is_fine(self, rule_ids_for):
        # ConfigError is a ReproError subclass discovered at runtime; the
        # rule accepts it without needing to see the import.
        assert rule_ids_for(
            """
            from repro.errors import ConfigError

            def check(n):
                if n < 0:
                    raise ConfigError("negative")
            """
        ) == []

    def test_local_subclass_raise_is_fine(self, rule_ids_for):
        # Subclasses defined in the linted file itself join the taxonomy
        # via the AST closure pass.
        assert rule_ids_for(
            """
            from repro.errors import QueryError

            class FixtureError(QueryError):
                pass

            def check(n):
                if n < 0:
                    raise FixtureError("negative")
            """
        ) == []

    def test_not_implemented_error_is_fine(self, rule_ids_for):
        # The abstract-method convention stays legal.
        assert rule_ids_for(
            """
            class Base:
                def check(self, ctx):
                    raise NotImplementedError
            """
        ) == []

    def test_bare_reraise_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            def fwd(fn):
                try:
                    return fn()
                except ValueError:
                    raise
            """
        ) == []


class TestExceptHandlers:
    def test_swallowing_bare_except_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            def safe(fn):
                try:
                    return fn()
                except:
                    return None
            """
        ) == ["REPRO002"]

    def test_swallowing_broad_except_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            def safe(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """
        ) == ["REPRO002"]

    def test_narrow_except_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            def safe(mapping, key):
                try:
                    return mapping[key]
                except KeyError:
                    return None
            """
        ) == []

    def test_broad_except_that_reraises_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            from repro.errors import QueryError

            def wrap(fn):
                try:
                    return fn()
                except Exception as exc:
                    raise QueryError("wrapped") from exc
            """
        ) == []


class TestAsserts:
    def test_runtime_assert_flagged(self, findings_for):
        findings = findings_for(
            """
            def check(za, at, k):
                assert za[at] < k
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO002"]
        assert "assert" in findings[0].message

    def test_explicit_invariant_is_fine(self, rule_ids_for):
        # The zipper's old asserts now look like this.
        assert rule_ids_for(
            """
            from repro.errors import InvariantError

            def check(za, at, k):
                if za[at] >= k:
                    raise InvariantError("ZA[AT] must stay below k")
            """
        ) == []


class TestAttributeProtocol:
    def test_module_getattr_attributeerror_is_fine(self, rule_ids_for):
        # Lazy module exports (PEP 562) must raise AttributeError — the
        # import machinery and hasattr() dispatch on exactly that type.
        assert rule_ids_for(
            """
            def __getattr__(name):
                if name == "LazyThing":
                    from repro.core.engine import GenieEngine

                    return GenieEngine
                raise AttributeError(f"module has no attribute {name!r}")
            """
        ) == []

    def test_attributeerror_outside_protocol_still_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            def lookup(obj, name):
                raise AttributeError(name)
            """
        ) == ["REPRO002"]
