"""REPRO004 fixtures: metric registration discipline."""


class TestDuplicateRegistration:
    def test_same_name_same_scope_flagged(self, findings_for):
        findings = findings_for(
            """
            def wire(registry):
                hits = registry.counter("cache_hits")
                also = registry.counter("cache_hits")
                return hits, also
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO004"]
        assert "cache_hits" in findings[0].message

    def test_distinct_names_are_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            def wire(registry):
                return (
                    registry.counter("cache_hits"),
                    registry.counter("cache_misses"),
                    registry.gauge("queue_depth"),
                    registry.histogram("batch_latency"),
                )
            """
        ) == []

    def test_same_name_in_different_scopes_is_fine(self, rule_ids_for):
        # Two components may each own a counter of the same name; only a
        # double registration inside one scope is a bug.
        assert rule_ids_for(
            """
            def wire_a(registry):
                return registry.counter("requests")

            def wire_b(registry):
                return registry.counter("requests")
            """
        ) == []


class TestPrivateStateAccess:
    def test_metrics_dict_poke_flagged(self, findings_for):
        findings = findings_for(
            """
            def reset(registry):
                registry._metrics.clear()
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO004"]
        assert "_metrics" in findings[0].message

    def test_registry_module_itself_is_exempt(self, rule_ids_for):
        assert rule_ids_for(
            """
            class MetricsRegistry:
                def snapshot(self):
                    return dict(self._metrics)
            """,
            path="repro/obs/registry.py",
        ) == []
