"""Tier-1 gate: src/ lints clean, and the report is byte-deterministic.

These are the tests that make the checker *enforcing*: seeding a
violation anywhere under ``src/repro`` (or letting a baseline entry go
stale) fails the suite, and two CLI runs must emit identical bytes.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.lint import DEFAULT_BASELINE, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

BAD_SNIPPET = "import time\n\n\ndef elapsed():\n    return time.time()\n"


def _cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
    )


class TestCleanTree:
    def test_src_is_clean_under_shipped_baseline(self):
        report = lint_paths([SRC])
        assert report.findings == [], "\n" + report.render()

    def test_no_stale_baseline_entries(self):
        # Strict mode is the allowlist ratchet: every shipped entry must
        # still suppress at least one real finding.
        report = lint_paths([SRC])
        assert report.stale == []
        assert report.exit_code(strict=True) == 0

    def test_every_baseline_entry_carries_a_reason(self):
        for entry in DEFAULT_BASELINE.entries:
            assert entry.reason.strip(), entry


class TestSeededViolation:
    def test_seeded_violation_fails_the_lint_gate(self, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(BAD_SNIPPET, encoding="utf-8")
        report = lint_paths([SRC, scratch])
        assert report.exit_code() == 1
        assert any(
            f.rule_id == "REPRO001" and f.path.endswith("scratch.py") for f in report.findings
        )

    def test_cli_exits_nonzero_on_violation(self, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(BAD_SNIPPET, encoding="utf-8")
        proc = _cli(str(scratch))
        assert proc.returncode == 1
        assert b"REPRO001" in proc.stdout


class TestCli:
    def test_strict_run_passes_and_is_byte_identical(self):
        first = _cli("--strict")
        second = _cli("--strict")
        assert first.returncode == 0, first.stdout.decode()
        assert second.returncode == 0
        assert first.stdout == second.stdout
        assert first.stdout.rstrip().endswith(b"result: PASS")

    def test_output_file_matches_stdout(self, tmp_path):
        out = tmp_path / "lint-report.txt"
        proc = _cli("--strict", "--output", str(out))
        assert proc.returncode == 0
        assert out.read_bytes() == proc.stdout.rstrip(b"\n") + b"\n"

    def test_list_rules(self):
        proc = _cli("--list-rules")
        assert proc.returncode == 0
        for i in range(1, 7):
            assert f"REPRO00{i}".encode() in proc.stdout
