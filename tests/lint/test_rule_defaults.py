"""REPRO005 fixtures: mutable default arguments."""


class TestMutableDefaults:
    def test_list_literal_default_flagged(self, findings_for):
        findings = findings_for(
            """
            def collect(item, bucket=[]):
                bucket.append(item)
                return bucket
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO005"]
        assert "bucket" in findings[0].message

    def test_dict_literal_default_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            def tag(name, labels={}):
                return dict(labels, name=name)
            """
        ) == ["REPRO005"]

    def test_constructor_default_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            def seen(key, cache=dict()):
                return key in cache
            """
        ) == ["REPRO005"]

    def test_kwonly_set_default_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            def dedupe(items, *, drop=set()):
                return [x for x in items if x not in drop]
            """
        ) == ["REPRO005"]

    def test_lambda_default_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            merge = lambda extra=[]: extra + [1]
            """
        ) == ["REPRO005"]

    def test_none_sentinel_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            def collect(item, bucket=None):
                if bucket is None:
                    bucket = []
                bucket.append(item)
                return bucket
            """
        ) == []

    def test_immutable_defaults_are_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            def shape(dims=(), name="x", scale=1.0, flags=frozenset()):
                return dims, name, scale, flags
            """
        ) == []
