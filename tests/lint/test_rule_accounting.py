"""REPRO003 fixtures: device/host charging calls must name a stage."""


class TestStageAccounting:
    def test_launch_without_stage_flagged(self, findings_for):
        findings = findings_for(
            """
            def scan(dev, kernel):
                dev.launch(kernel)
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO003"]
        assert "launch" in findings[0].message

    def test_charge_ops_without_stage_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            def bill(host, n):
                host.charge_ops(n)
            """
        ) == ["REPRO003"]

    def test_transfer_without_stage_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            def upload(dev, arr):
                return dev.to_device(arr, label="queries")
            """
        ) == ["REPRO003"]

    def test_explicit_none_stage_flagged(self, rule_ids_for):
        # stage=None defeats accounting just as surely as omitting it.
        assert rule_ids_for(
            """
            def scan(dev, kernel):
                dev.launch(kernel, stage=None)
            """
        ) == ["REPRO003"]

    def test_stage_keyword_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            def scan(dev, kernel):
                dev.launch(kernel, stage="match")
            """
        ) == []

    def test_ambient_stage_scope_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            def scan(dev, kernel, arr):
                with dev.stage("match"):
                    dev.to_device(arr, label="queries")
                    dev.launch(kernel)
            """
        ) == []

    def test_unrelated_launch_name_still_needs_stage(self, rule_ids_for):
        # The rule keys on method names, not receiver types: any .launch
        # in src/ is part of the accounting surface by convention.
        assert rule_ids_for(
            """
            def go(rocket):
                rocket.launch()
            """
        ) == ["REPRO003"]
