"""Engine, registry, and baseline behavior for repro.lint."""

import textwrap

import pytest

from repro.errors import ConfigError
from repro.lint import (
    Baseline,
    BaselineEntry,
    Finding,
    PARSE_RULE_ID,
    all_rules,
    collect_files,
    display_path,
    get_rule,
    lint_sources,
)

BAD_ASSERT = textwrap.dedent(
    """
    def check(x):
        assert x > 0
    """
)

CLEAN = textwrap.dedent(
    """
    def double(x):
        return 2 * x
    """
)


class TestRegistry:
    def test_seven_rules_in_stable_id_order(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [f"REPRO00{i}" for i in range(1, 8)]

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.title
            assert rule.rationale

    def test_get_rule_round_trips(self):
        assert get_rule("REPRO005").rule_id == "REPRO005"

    def test_get_rule_rejects_unknown_id(self):
        with pytest.raises(ConfigError):
            get_rule("REPRO999")


class TestFindingOrder:
    def test_findings_sorted_by_path_then_position(self):
        report = lint_sources(
            {
                "repro/zz.py": BAD_ASSERT,
                "repro/aa.py": BAD_ASSERT + "\nassert True\n",
            }
        )
        keys = [finding.sort_key() for finding in report.findings]
        assert keys == sorted(keys)
        assert [f.path for f in report.findings] == ["repro/aa.py", "repro/aa.py", "repro/zz.py"]

    def test_render_is_stable_across_runs(self):
        sources = {"repro/aa.py": BAD_ASSERT, "repro/bb.py": CLEAN}
        first = lint_sources(sources).render()
        second = lint_sources(sources).render()
        assert first == second

    def test_finding_render_format(self):
        finding = Finding("repro/x.py", 3, 4, "REPRO002", "runtime assert")
        assert finding.render() == "repro/x.py:3:4: REPRO002 runtime assert"


class TestParseFailures:
    def test_syntax_error_becomes_repro000(self):
        report = lint_sources({"repro/broken.py": "def f(:\n"})
        assert [f.rule_id for f in report.findings] == [PARSE_RULE_ID]
        assert report.exit_code() == 1

    def test_broken_file_still_counts_as_checked(self):
        report = lint_sources({"repro/broken.py": "def f(:\n", "repro/ok.py": CLEAN})
        assert report.files == 2


class TestBaseline:
    def test_matching_entry_suppresses_and_counts(self):
        entry = BaselineEntry("repro/core/fixture.py", "REPRO002", "fixture reason")
        report = lint_sources(
            {"repro/core/fixture.py": BAD_ASSERT + "\nassert True\n"},
            baseline=Baseline((entry,)),
        )
        assert report.findings == []
        assert report.suppressed == [(entry, 2)]
        assert report.suppressed_total == 2
        assert report.stale == []
        assert report.exit_code(strict=True) == 0

    def test_entry_only_covers_its_own_rule(self):
        # A baselined file is not a free-fire zone: a different rule id
        # in the same file still fails.
        entry = BaselineEntry("repro/core/fixture.py", "REPRO002", "fixture reason")
        report = lint_sources(
            {"repro/core/fixture.py": BAD_ASSERT + "\ndef f(b=[]):\n    return b\n"},
            baseline=Baseline((entry,)),
        )
        assert [f.rule_id for f in report.findings] == ["REPRO005"]
        assert report.exit_code() == 1

    def test_stale_entry_fails_only_under_strict(self):
        entry = BaselineEntry("repro/core/fixture.py", "REPRO002", "no longer true")
        report = lint_sources({"repro/core/fixture.py": CLEAN}, baseline=Baseline((entry,)))
        assert report.findings == []
        assert report.stale == [entry]
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1
        assert "stale baseline entries (1):" in report.render(strict=True)

    def test_reason_is_mandatory(self):
        with pytest.raises(ConfigError):
            Baseline((BaselineEntry("repro/x.py", "REPRO001", "   "),))

    def test_duplicate_key_rejected(self):
        with pytest.raises(ConfigError):
            Baseline(
                (
                    BaselineEntry("repro/x.py", "REPRO001", "first"),
                    BaselineEntry("repro/x.py", "REPRO001", "second"),
                )
            )


class TestTaxonomyClosure:
    def test_subclass_chain_across_files(self):
        # mid.py subclasses the taxonomy; leaf.py subclasses mid.py's
        # class. Both raises are legitimate via the fixpoint closure.
        report = lint_sources(
            {
                "repro/mid.py": textwrap.dedent(
                    """
                    from repro.errors import QueryError

                    class MidError(QueryError):
                        pass
                    """
                ),
                "repro/leaf.py": textwrap.dedent(
                    """
                    from repro.mid import MidError

                    class LeafError(MidError):
                        pass

                    def boom():
                        raise LeafError("x")
                    """
                ),
            }
        )
        assert report.findings == []


class TestPaths:
    def test_display_path_anchors_on_repro_package(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(CLEAN, encoding="utf-8")
        assert display_path(target) == "repro/core/mod.py"

    def test_collect_files_dedupes_and_sorts(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        for name in ("b.py", "a.py"):
            (pkg / name).write_text(CLEAN, encoding="utf-8")
        files = collect_files([tmp_path / "src", pkg / "b.py"])
        assert [display_path(f) for f in files] == ["repro/a.py", "repro/b.py"]
