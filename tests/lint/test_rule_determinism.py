"""REPRO001 fixtures: wall clocks and global/unseeded RNG are flagged."""


class TestWallClock:
    def test_time_time_flagged(self, findings_for):
        findings = findings_for(
            """
            import time

            def elapsed():
                return time.time()
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO001"]
        assert findings[0].line == 5
        assert "time.time" in findings[0].message

    def test_from_import_alias_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            from time import perf_counter as pc

            def elapsed():
                return pc()
            """
        ) == ["REPRO001"]

    def test_datetime_now_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        ) == ["REPRO001"]

    def test_time_sleep_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            import time

            def wait():
                time.sleep(1.0)
            """
        ) == ["REPRO001"]

    def test_virtual_clock_method_is_fine(self, rule_ids_for):
        # Attribute access on local objects never resolves to a module
        # path; the serve layer's clock.now() stays clean.
        assert rule_ids_for(
            """
            def now(clock):
                return clock.now() + clock.time()
            """
        ) == []


class TestRandomness:
    def test_stdlib_random_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            import random

            def pick(items):
                return random.choice(items)
            """
        ) == ["REPRO001"]

    def test_numpy_module_level_rng_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            import numpy as np

            def noise(n):
                np.random.seed(0)
                return np.random.rand(n)
            """
        ) == ["REPRO001", "REPRO001"]

    def test_unseeded_default_rng_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            import numpy as np

            def noise(n):
                return np.random.default_rng().normal(size=n)
            """
        ) == ["REPRO001"]

    def test_unseeded_from_import_default_rng_flagged(self, rule_ids_for):
        assert rule_ids_for(
            """
            from numpy.random import default_rng

            def noise(n):
                return default_rng().normal(size=n)
            """
        ) == ["REPRO001"]

    def test_seeded_default_rng_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            import numpy as np

            def noise(n, seed):
                rng = np.random.default_rng(seed)
                return rng.normal(size=n)
            """
        ) == []

    def test_explicit_bit_generator_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            import numpy as np

            def stream(seed):
                return np.random.Generator(np.random.PCG64(seed))
            """
        ) == []

    def test_generator_annotation_is_fine(self, rule_ids_for):
        assert rule_ids_for(
            """
            import numpy as np

            def draw(rng: np.random.Generator) -> float:
                return float(rng.integers(10))
            """
        ) == []
