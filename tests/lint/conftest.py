"""Shared helpers for the repro.lint suites: lint in-memory fixtures."""

import textwrap

import pytest

from repro.lint import lint_sources


@pytest.fixture
def findings_for():
    """Lint one dedented fixture snippet, returning its findings."""

    def _run(code, path="repro/core/fixture.py"):
        report = lint_sources({path: textwrap.dedent(code)})
        return report.findings

    return _run


@pytest.fixture
def rule_ids_for(findings_for):
    """The sorted rule-id list a fixture snippet triggers."""

    def _run(code, path="repro/core/fixture.py"):
        return sorted(finding.rule_id for finding in findings_for(code, path))

    return _run
