"""Tests for the MatchModel protocol and the model registry."""

import numpy as np
import pytest

from repro.api.models import (
    AnnModel,
    BaseMatchModel,
    DocumentModel,
    MatchModel,
    NgramModel,
    RawModel,
    RelationalModel,
    SequenceModel,
    available_models,
    register_model,
    resolve_model,
)
from repro.core.types import Corpus, Query
from repro.errors import ConfigError, QueryError
from repro.lsh.e2lsh import E2Lsh
from repro.sa.relational import AttributeSpec


class TestRegistry:
    def test_paper_modalities_registered(self):
        names = available_models()
        for expected in ("relational", "document", "sequence", "ngram", "raw"):
            assert expected in names
        assert any(name.startswith("ann-") for name in names)

    def test_resolve_by_name_with_kwargs(self):
        model = resolve_model("sequence", n=4)
        assert isinstance(model, SequenceModel)
        assert model.n == 4

    def test_resolve_ann_family(self):
        model = resolve_model("ann-e2lsh", num_functions=8, dim=4, width=4.0, domain=67)
        assert isinstance(model, AnnModel)
        assert model.num_functions == 8

    def test_ann_factory_routes_seeds_consistently(self):
        # `seed` reaches the LSH family; `rehash_seed` reaches the re-hash
        # projections — in both the family-building and instance spellings.
        built = resolve_model(
            "ann-e2lsh", num_functions=4, dim=4, width=4.0, seed=7, rehash_seed=3
        )
        assert built.transformer.family.seed == 7
        wrapped = resolve_model("ann", family=E2Lsh(4, 4, 4.0, seed=7), rehash_seed=3)
        assert wrapped.transformer.family.seed == 7
        pts = np.random.default_rng(0).standard_normal((3, 4))
        assert np.array_equal(built.transformer.keyword_matrix(pts),
                              wrapped.transformer.keyword_matrix(pts))

    def test_resolve_instance_passthrough(self):
        model = DocumentModel()
        assert resolve_model(model) is model

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown model"):
            resolve_model("nope")

    def test_kwargs_with_instance_raise(self):
        with pytest.raises(ConfigError):
            resolve_model(DocumentModel(), n=3)

    def test_non_model_rejected(self):
        with pytest.raises(ConfigError, match="MatchModel"):
            resolve_model(object())

    def test_custom_registration(self):
        @register_model("test-custom")
        class Custom(BaseMatchModel):
            name = "test-custom"

            def encode_corpus(self, data):
                return Corpus(data)

            def encode_queries(self, data):
                return [Query.from_keywords(q) for q in data]

        try:
            assert isinstance(resolve_model("test-custom"), Custom)
        finally:
            from repro.api.models import MODEL_REGISTRY

            del MODEL_REGISTRY["test-custom"]

    def test_models_satisfy_protocol(self):
        instances = [
            RawModel(),
            RelationalModel([AttributeSpec("x", "categorical")]),
            DocumentModel(),
            SequenceModel(),
            NgramModel(),
            AnnModel(E2Lsh(4, 4, 4.0, seed=0)),
        ]
        for model in instances:
            assert isinstance(model, MatchModel)


class TestRawModel:
    def test_corpus_passthrough_and_wrap(self):
        corpus = Corpus([[1, 2], [3]])
        model = RawModel()
        assert model.encode_corpus(corpus) is corpus
        assert len(model.encode_corpus([[0], [1, 2]])) == 2

    def test_queries_accept_query_or_keywords(self):
        model = RawModel()
        q = Query.from_keywords([1, 2])
        out = model.encode_queries([q, [3, 4]])
        assert out[0] is q
        assert out[1].num_items == 2


class TestAnnModel:
    def test_adapt_config_pins_count_bound(self):
        from repro.core.engine import GenieConfig

        model = AnnModel(E2Lsh(16, 8, 4.0, seed=0), domain=67)
        assert model.adapt_config(GenieConfig(k=3)).count_bound == 16

    def test_empty_fit_rejected(self):
        model = AnnModel(E2Lsh(4, 8, 4.0, seed=0))
        with pytest.raises(ConfigError):
            model.encode_corpus(np.zeros((0, 8)))

    def test_points_before_fit_raise(self):
        model = AnnModel(E2Lsh(4, 8, 4.0, seed=0))
        with pytest.raises(QueryError):
            _ = model.points

    def test_name_includes_family(self):
        assert AnnModel(E2Lsh(4, 8, 4.0, seed=0)).name == "ann-e2lsh"


class TestSequenceModel:
    def test_shortlist_validation(self):
        model = SequenceModel()
        with pytest.raises(QueryError):
            model.shortlist_k(5, n_candidates=2)
        assert model.shortlist_k(1, n_candidates=8) == 8

    def test_unknown_search_option_rejected(self):
        model = NgramModel()
        with pytest.raises(QueryError, match="search options"):
            model.shortlist_k(1, bogus=2)


class TestResolveShortlistK:
    """The one shared shortlist-width helper (session search + server admission)."""

    def test_model_without_hook_returns_k(self):
        from repro.api.models import resolve_shortlist_k

        class Bare:
            def encode_corpus(self, data):
                return Corpus(data)

            def encode_queries(self, data):
                return [Query.from_keywords(q) for q in data]

        assert resolve_shortlist_k(Bare(), 7, {}) == 7

    def test_model_without_hook_rejects_options(self):
        from repro.api.models import resolve_shortlist_k

        class Bare:
            pass

        with pytest.raises(QueryError, match="unsupported search options"):
            resolve_shortlist_k(Bare(), 3, {"n_candidates": 10})

    def test_hook_widens_and_validates(self):
        from repro.api.models import resolve_shortlist_k

        model = SequenceModel()
        assert resolve_shortlist_k(model, 3, {"n_candidates": 12}) == 12
        with pytest.raises(QueryError, match="n_candidates >= k"):
            resolve_shortlist_k(model, 5, {"n_candidates": 2})

    def test_base_model_rejects_unknown_options(self):
        from repro.api.models import resolve_shortlist_k

        with pytest.raises(QueryError, match="does not accept search options"):
            resolve_shortlist_k(RawModel(), 3, {"bogus": 1})
