"""API equivalence: every modality through GenieSession == the legacy path.

Each test builds the same workload twice on fresh simulated devices — once
through the unified session layer, once through the engine-level path the
legacy wrappers used — and asserts value-identical ids, counts, tie-break
order and per-stage StageTimings.
"""

import numpy as np

from repro.api import GenieSession
from repro.api.models import AnnModel
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.multiload import MultiLoadGenie
from repro.core.types import Corpus, Query
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.lsh.e2lsh import E2Lsh
from repro.lsh.transform import LshTransformer, TauAnnIndex
from repro.sa.document import DocumentIndex, WordVocabulary, tokenize
from repro.sa.relational import AttributeSpec, RelationalIndex
from repro.sa.sequence import SequenceIndex


def assert_results_identical(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert np.array_equal(a.ids, b.ids), (a.ids, b.ids)
        assert np.array_equal(a.counts, b.counts)


def assert_timings_identical(lhs, rhs):
    assert lhs is not None and rhs is not None
    assert lhs.seconds == rhs.seconds, (lhs.seconds, rhs.seconds)


DOCS = [
    "the quick brown fox jumps over anything",
    "a lazy dog sleeps all day long",
    "quick dog runs in the big park",
    "brown bears eat sweet honey",
    "gpu systems index documents quickly",
]


class TestDocumentEquivalence:
    def test_session_matches_engine_path(self):
        # Reference: the historical DocumentIndex implementation, inlined
        # against a raw engine on its own device.
        vocab = WordVocabulary()
        engine = GenieEngine(device=Device(), host=HostCpu(), config=GenieConfig())
        engine.fit(Corpus([vocab.encode(tokenize(d), grow=True) for d in DOCS]))
        texts = ["quick brown dog", "honey bears"]
        legacy = engine.query(
            [Query.from_keywords(vocab.encode(tokenize(t), grow=False)) for t in texts], k=3
        )
        legacy_profile = engine.last_profile

        session = GenieSession(device=Device(), host=HostCpu())
        handle = session.create_index(DOCS, model="document")
        result = handle.search(texts, k=3)

        assert_results_identical(legacy, result.results)
        assert_timings_identical(legacy_profile, result.profile)

    def test_wrapper_delegates_unchanged(self):
        wrapper = DocumentIndex().fit(DOCS)
        session = GenieSession()
        handle = session.create_index(DOCS, model="document")
        texts = ["quick brown dog"]
        assert_results_identical(wrapper.query_batch(texts, k=4), handle.search(texts, k=4).results)
        assert_timings_identical(wrapper.engine.last_profile, handle.last_result.profile)


class TestRelationalEquivalence:
    COLUMNS = {
        "age": np.array([20.0, 35.0, 50.0, 65.0, 35.0]),
        "job": np.array([0, 1, 2, 1, 0]),
    }
    SCHEMA = [AttributeSpec("age", "numeric", bins=16), AttributeSpec("job", "categorical")]
    RANGES = [{"age": (30, 60), "job": (0, 1)}, {"age": (18, 40)}]

    def test_session_matches_wrapper(self):
        wrapper = RelationalIndex(self.SCHEMA).fit(self.COLUMNS)
        legacy = wrapper.query(self.RANGES, k=5)
        legacy_profile = wrapper.engine.last_profile

        session = GenieSession()
        handle = session.create_index(self.COLUMNS, model="relational", schema=self.SCHEMA)
        result = handle.search(self.RANGES, k=5)

        assert_results_identical(legacy, result.results)
        assert_timings_identical(legacy_profile, result.profile)


class TestSequenceEquivalence:
    TITLES = [
        "approximate string matching on gpus",
        "inverted index frameworks for search",
        "similarity search with priority queues",
        "approximate string matching algorithms",
    ]

    def test_session_matches_wrapper(self):
        wrapper = SequenceIndex(n=3).fit(self.TITLES)
        legacy = wrapper.search("approximate string matcing", k=2, n_candidates=4)

        session = GenieSession()
        handle = session.create_index(self.TITLES, model="sequence", n=3)
        ours = handle.search(["approximate string matcing"], k=2, n_candidates=4).payload[0]

        assert [(m.sequence_id, m.distance, m.count) for m in legacy.matches] == [
            (m.sequence_id, m.distance, m.count) for m in ours.matches
        ]
        assert legacy.certified == ours.certified
        assert legacy.candidates_verified == ours.candidates_verified
        assert legacy.shortlist_size == ours.shortlist_size

    def test_verify_cost_charged_identically(self):
        wrapper = SequenceIndex(n=3).fit(self.TITLES)
        wrapper.search("approximate string matcing", k=1, n_candidates=4)
        session = GenieSession()
        handle = session.create_index(self.TITLES, model="sequence", n=3)
        result = handle.search(["approximate string matcing"], k=1, n_candidates=4)
        assert result.profile.get("verify") == wrapper.host.timings.get("verify")


class TestAnnEquivalence:
    def test_session_matches_wrapper(self):
        rng = np.random.default_rng(3)
        points = rng.standard_normal((60, 8))
        family_kwargs = dict(num_functions=16, dim=8, width=4.0, seed=0)

        wrapper = TauAnnIndex(E2Lsh(**family_kwargs), domain=67, seed=0).fit(points)
        legacy = wrapper.query(points[:4], k=3)
        legacy_profile = wrapper.engine.last_profile

        session = GenieSession()
        handle = session.create_index(
            points, model=AnnModel(E2Lsh(**family_kwargs), domain=67, seed=0)
        )
        result = handle.search(points[:4], k=3)

        assert_results_identical(legacy, result.results)
        assert_timings_identical(legacy_profile, result.profile)
        for (ids, counts, estimates), top in zip(result.payload, result.results):
            assert np.allclose(estimates, counts / 16.0)


class TestMultiLoadEquivalence:
    def _workload(self):
        rng = np.random.default_rng(5)
        family = E2Lsh(8, 4, 4.0, seed=0)
        transformer = LshTransformer(family, domain=67, seed=0)
        corpus = transformer.to_corpus(rng.standard_normal((40, 4)))
        queries = transformer.to_queries(rng.standard_normal((6, 4)))
        return corpus, queries

    def test_wrapper_vs_session_residency(self):
        corpus, queries = self._workload()
        config = GenieConfig(k=4, count_bound=8)

        legacy = MultiLoadGenie(device=Device(), host=HostCpu(), config=config, part_size=9)
        legacy.fit(corpus)
        legacy_results = legacy.query(queries, k=4)

        session = GenieSession(device=Device(), host=HostCpu(), config=config)
        # Budget sized to a single part forces the same swap-through-memory
        # protocol the paper's multi-loader uses.
        handle = session.create_index(corpus, model="raw", name="big", part_size=9)
        session.memory_budget = max(part.device_bytes for part in handle._parts)
        result = handle.search(queries, k=4)

        assert_results_identical(legacy_results, result.results)
        assert_timings_identical(legacy.last_profile, result.profile)
        assert len(result.evicted) >= handle.num_parts - 1

    def test_multipart_matches_single_index(self):
        corpus, queries = self._workload()
        config = GenieConfig(k=3, count_bound=8)
        single = GenieEngine(device=Device(), host=HostCpu(), config=config).fit(corpus)
        single_results = single.query(queries, k=3)

        session = GenieSession(device=Device(), host=HostCpu(), config=config)
        handle = session.create_index(corpus, model="raw", part_size=7)
        merged = handle.search(queries, k=3)

        for s, m in zip(single_results, merged.results):
            assert sorted(s.counts.tolist(), reverse=True) == sorted(m.counts.tolist(), reverse=True)
