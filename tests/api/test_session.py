"""Tests for GenieSession: residency, budgets, eviction, the uniform surface."""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.core.types import Query
from repro.errors import ConfigError, QueryError
from repro.sa.relational import AttributeSpec


def _docs(n=30):
    words = ["gpu", "index", "search", "fast", "cat", "dog", "tree", "blue"]
    rng = np.random.default_rng(0)
    return [" ".join(rng.choice(words, size=4, replace=False)) for _ in range(n)]


class TestSessionBasics:
    def test_create_and_lookup_by_name(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document", name="tweets")
        assert session.index("tweets") is handle
        assert session.indexes == ("tweets",)

    def test_auto_names_unique(self):
        session = GenieSession()
        a = session.create_index(_docs(), model="document")
        b = session.create_index(_docs(), model="document")
        assert a.name != b.name

    def test_duplicate_name_rejected(self):
        session = GenieSession()
        session.create_index(_docs(), model="document", name="x")
        with pytest.raises(ConfigError, match="already exists"):
            session.create_index(_docs(), model="document", name="x")

    def test_unknown_name_lookup(self):
        with pytest.raises(ConfigError, match="no index named"):
            GenieSession().index("missing")

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigError):
            GenieSession(memory_budget=0)

    def test_search_before_fit_raises(self):
        session = GenieSession()
        handle = session.declare_index("document")
        with pytest.raises(QueryError, match="fitted"):
            handle.search(["hello"], k=1)

    def test_empty_batch_rejected(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document")
        with pytest.raises(QueryError, match="empty query batch"):
            handle.search([], k=1)

    def test_bad_k_rejected(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document")
        with pytest.raises(QueryError, match="k must be"):
            handle.search(["gpu index"], k=0)

    def test_unsupported_search_option_rejected(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document")
        with pytest.raises(QueryError):
            handle.search(["gpu index"], k=1, n_candidates=5)

    def test_drop_unregisters_and_frees(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document", name="x")
        assert handle.resident
        session.drop("x")
        assert session.indexes == ()
        assert session.resident_bytes == 0

    def test_close_evicts_everything(self):
        session = GenieSession()
        session.create_index(_docs(), model="document", name="x")
        session.create_index([[1, 2], [2, 3]], model="raw", name="y")
        assert session.resident_bytes > 0
        session.close()
        assert session.resident_bytes == 0
        assert session.indexes == ("x", "y")

    def test_evict_all_keeps_session_usable(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document", name="x")
        session.evict_all()
        assert session.resident_bytes == 0 and not session.closed
        result = handle.search(["gpu index"], k=2)  # swaps back in
        assert result.swapped_in == 1


class TestLifecycle:
    def test_close_is_idempotent_and_flagged(self):
        session = GenieSession()
        assert not session.closed
        session.close()
        session.close()
        assert session.closed

    def test_search_after_close_raises(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document", name="x")
        session.close()
        with pytest.raises(ConfigError, match="session is closed"):
            handle.search(["gpu index"], k=2)

    def test_create_index_after_close_raises(self):
        session = GenieSession()
        session.close()
        with pytest.raises(ConfigError, match="session is closed"):
            session.create_index(_docs(), model="document")

    def test_fit_after_close_raises(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document", name="x")
        session.close()
        with pytest.raises(ConfigError, match="session is closed"):
            handle.fit(_docs())

    def test_context_manager_closes_on_exit(self):
        with GenieSession() as session:
            handle = session.create_index(_docs(), model="document", name="x")
            assert handle.resident
        assert session.closed
        assert session.resident_bytes == 0

    def test_entering_closed_session_raises(self):
        session = GenieSession()
        session.close()
        with pytest.raises(ConfigError, match="session is closed"):
            with session:
                pass


class TestResidencyLogBound:
    def test_log_is_bounded_with_total_counter(self):
        corpus = [[i % 11] for i in range(600)]
        session = GenieSession(residency_log_limit=4)
        whole = session.create_index(corpus, model="raw", name="whole")
        session.memory_budget = max(whole.device_bytes // 2, 16)
        parted = session.create_index(corpus, model="raw", name="parted", part_size=150)
        query = Query.from_keywords([0, 3])
        for _ in range(3):
            parted.search([query], k=5)  # each pass swaps 4 parts through
        log = session.residency_log
        assert len(log) <= 4
        assert log.total_events > len(log)
        assert log.dropped == log.total_events - len(log)
        assert all(e.kind in ("attach", "evict") for e in log)

    def test_search_result_events_exact_despite_tight_limit(self):
        # SearchResult.swapped_in/evicted must count every event a search
        # caused, even when the bounded session log retains fewer.
        corpus = [[i % 11] for i in range(600)]
        session = GenieSession(residency_log_limit=2)
        whole = session.create_index(corpus, model="raw", name="whole")
        session.memory_budget = max(whole.device_bytes // 2, 16)
        parted = session.create_index(corpus, model="raw", name="parted", part_size=150)
        result = parted.search([Query.from_keywords([0, 3])], k=5)
        assert result.swapped_in == 4  # all four parts transferred
        assert len(result.evicted) >= 2  # the budget forced swap-outs
        # More events were reported than the bounded log retains.
        assert result.swapped_in + len(result.evicted) > len(session.residency_log)
        assert len(session.residency_log) <= 2

    def test_since_survives_dropped_events(self):
        session = GenieSession(residency_log_limit=2)
        mark = session.residency_log.mark()
        session.create_index([[1]], model="raw", name="a")
        session.create_index([[2]], model="raw", name="b")
        session.create_index([[3]], model="raw", name="c")
        recent = session.residency_log.since(mark)
        # Only the retained tail is reported; never duplicates, never errors.
        assert [e.index for e in recent] == ["b", "c"]

    def test_bad_limit_rejected(self):
        with pytest.raises(ConfigError, match="limit"):
            GenieSession(residency_log_limit=0)

    def test_search_events_unaffected_within_limit(self):
        session = GenieSession()  # default limit is generous
        handle = session.create_index(_docs(), model="document")
        session.evict_all()
        result = handle.search(["gpu index"], k=2)
        assert result.swapped_in == 1


class TestSearchSurface:
    def test_document_search_result_shape(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document")
        result = handle.search(["gpu index search", "cat dog"], k=3)
        assert len(result) == 2
        assert len(result.ids) == 2 and len(result.counts) == 2
        assert result.payload is None
        assert result.profile.get("match") > 0

    def test_relational_search(self):
        session = GenieSession()
        handle = session.create_index(
            {"A": np.array([1, 2, 1]), "B": np.array([2, 1, 3]), "C": np.array([1, 2, 3])},
            model="relational",
            schema=[AttributeSpec(n, "categorical") for n in "ABC"],
        )
        result = handle.search([{"A": (1, 2), "B": (1, 1), "C": (2, 3)}], k=3)
        assert result[0].as_pairs() == [(1, 3), (2, 2), (0, 1)]

    def test_sequence_search_payload_verified(self):
        titles = ["approximate string matching", "inverted index search", "graph processing systems"]
        session = GenieSession()
        handle = session.create_index(titles, model="sequence", n=3)
        result = handle.search(["approximate string matcing"], k=1, n_candidates=3)
        seq = result.payload[0]
        assert seq.best.sequence_id == 0
        assert seq.best.distance == 1
        assert result.profile.get("verify") > 0

    def test_sequence_unseen_query_skipped(self):
        session = GenieSession()
        handle = session.create_index(["abcdef", "bcdefg"], model="sequence", n=3)
        result = handle.search(["zzzzzz"], k=1, n_candidates=2)
        assert len(result[0]) == 0
        assert result.payload[0].matches == []

    def test_ann_search_estimates(self):
        rng = np.random.default_rng(0)
        points = rng.standard_normal((40, 8))
        session = GenieSession()
        handle = session.create_index(
            points, model="ann-e2lsh", num_functions=16, dim=8, width=4.0, seed=0, domain=67
        )
        assert handle.config.count_bound == 16
        result = handle.search(points[:3], k=2)
        for (ids, counts, estimates), top in zip(result.payload, result.results):
            assert np.allclose(estimates, counts / 16.0)
            assert np.array_equal(ids, top.ids)

    def test_batched_search_matches_single_batch(self):
        session = GenieSession()
        docs = _docs(40)
        handle = session.create_index(docs, model="document")
        queries = [docs[i] for i in range(8)]
        whole = handle.search(queries, k=3)
        split = handle.search(queries, k=3, batch_size=3)
        for a, b in zip(whole.results, split.results):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.counts, b.counts)


class TestResidency:
    def test_multiple_indexes_share_budget_with_lru_eviction(self):
        corpus_a = [[i % 7] for i in range(600)]
        corpus_b = [[i % 5] for i in range(600)]
        session = GenieSession()
        a = session.create_index(corpus_a, model="raw", name="a")
        b_bytes = a.device_bytes  # same shape, same footprint
        session.memory_budget = a.device_bytes + b_bytes // 2  # only one fits
        b = session.create_index(corpus_b, model="raw", name="b")
        # Creating b evicted a (LRU) to fit within the budget.
        assert b.resident and not a.resident
        assert session.resident_parts() == [("b", 0)]

        result = a.search([Query.from_keywords([0])], k=2)
        assert result.swapped_in == 1
        assert [e.index for e in result.evicted] == ["b"]
        assert a.resident and not b.resident

    def test_resident_search_needs_no_swap(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document")
        result = handle.search(["gpu index"], k=2)
        assert result.swapped_in == 0 and result.evicted == ()
        assert "index_transfer" not in result.profile.seconds

    def test_swap_in_charged_to_profile(self):
        session = GenieSession()
        handle = session.create_index(_docs(), model="document")
        session.evict(handle.name)
        result = handle.search(["gpu index"], k=2)
        assert result.swapped_in == 1
        assert result.profile.get("index_transfer") > 0

    def test_oversized_part_rejected_with_hint(self):
        session = GenieSession(memory_budget=8)
        with pytest.raises(ConfigError, match="part_size"):
            session.create_index([[i] for i in range(100)], model="raw")

    def test_index_larger_than_device_raises_oom(self):
        # With no explicit budget the hardware-level error surfaces, as it
        # always has for the engine/wrapper path.
        from repro.errors import GpuOutOfMemoryError
        from repro.gpu.device import Device
        from repro.gpu.specs import small_device

        session = GenieSession(device=Device(small_device(1024)))
        with pytest.raises(GpuOutOfMemoryError):
            session.create_index([[i] for i in range(1000)], model="raw")

    def test_partitioned_index_swaps_through_budget(self):
        corpus = [[i % 11] for i in range(1000)]
        session = GenieSession()
        whole = session.create_index(corpus, model="raw", name="whole")
        budget = whole.device_bytes // 2
        session.memory_budget = max(budget, 16)
        parted = session.create_index(corpus, model="raw", name="parted", part_size=250)
        assert parted.num_parts == 4

        query = Query.from_keywords([0, 3])
        result = parted.search([query], k=5)
        assert result.swapped_in >= 4  # every part transferred at least once
        assert len(result.evicted) > 0  # the budget forced swap-outs
        assert result.profile.get("index_transfer") > 0
        assert result.profile.get("result_merge") > 0

    def test_multimodal_session_within_budget(self):
        """Acceptance demo: >= 3 modalities resident under one stated budget."""
        rng = np.random.default_rng(1)
        session = GenieSession(memory_budget=512 * 1024)
        docs = session.create_index(_docs(50), model="document", name="tweets")
        seqs = session.create_index(
            ["approximate string matching", "generic inverted index", "similarity search on gpu"],
            model="sequence", name="titles",
        )
        ann = session.create_index(
            rng.standard_normal((60, 8)), model="ann-e2lsh",
            num_functions=8, dim=8, width=4.0, domain=67, name="points",
        )
        assert docs.resident and seqs.resident and ann.resident
        assert session.resident_bytes <= session.memory_budget

        assert docs.search(["gpu index search"], k=3).results
        assert seqs.search(["generic inverted indx"], k=1, n_candidates=2).payload[0].best is not None
        assert ann.search(rng.standard_normal((2, 8)), k=3).payload

    def test_ensure_resident_bumps_touched_part_to_mru(self):
        # Re-touching a resident part must move it to the MRU end, so the
        # *other* index is the eviction victim when the budget tightens.
        session = GenieSession()
        a = session.create_index([[i % 7] for i in range(400)], model="raw", name="a")
        b = session.create_index([[i % 7] for i in range(400)], model="raw", name="b")
        assert session.resident_parts() == [("a", 0), ("b", 0)]
        a.search([Query.from_keywords([0])], k=2)  # touch a: LRU order is now b, a
        assert session.resident_parts() == [("b", 0), ("a", 0)]
        # Room for two residents: attaching c evicts exactly the LRU one.
        session.memory_budget = 2 * a.device_bytes + b.device_bytes // 2
        session.create_index([[i % 7] for i in range(400)], model="raw", name="c")
        assert not b.resident and a.resident  # b was LRU, a survived

    def test_interleaved_multi_index_eviction_is_exactly_lru(self):
        corpus = [[i % 5] for i in range(300)]
        session = GenieSession()
        handles = {n: session.create_index(corpus, model="raw", name=n) for n in "abcd"}
        one = handles["a"].device_bytes
        session.memory_budget = 4 * one  # everything fits so far
        query = [Query.from_keywords([0])]
        # Interleaved touches: LRU order becomes c, a, d, b.
        for name in ["b", "c", "a", "d", "c", "a", "d", "b"]:
            handles[name].search(query, k=1)
        assert [n for n, _ in session.resident_parts()] == ["c", "a", "d", "b"]
        # Room for three residents: attaching a new index must evict the
        # two least recently used ones, in exactly LRU order.
        session.memory_budget = 3 * one + one // 2
        log_mark = session.residency_log.mark()
        session.create_index(corpus, model="raw", name="e")
        evicted = [e.index for e in session.residency_log.since(log_mark) if e.kind == "evict"]
        assert evicted == ["c", "a"]
        assert [n for n, _ in session.resident_parts()] == ["d", "b", "e"]

    def test_refit_replaces_parts(self):
        session = GenieSession()
        handle = session.create_index([[1], [2]], model="raw", name="x")
        first_bytes = handle.device_bytes
        handle.fit([[1], [2], [3], [4], [5]])
        assert handle.device_bytes > first_bytes
        assert handle.resident
        result = handle.search([Query.from_keywords([5])], k=1)
        assert int(result[0].ids[0]) == 4
