"""Docs stay in sync with the code: README's model table vs the registry."""

from pathlib import Path

from repro.api import available_models

README = Path(__file__).resolve().parents[2] / "README.md"


def test_readme_lists_every_registered_model():
    text = README.read_text()
    for key in available_models():
        assert f"| `{key}` |" in text, (
            f"README model table is missing registered model {key!r}; "
            "regenerate the table in the 'Unified API' section"
        )


def test_readme_documents_the_serve_layer():
    text = README.read_text()
    assert "## Serving" in text
    for name in ("GenieServer", "BatchPolicy", "max_queue_depth", "serve_throughput.txt"):
        assert name in text
