"""Tests for the experiment helpers (setup builders, distance reporting)."""

import numpy as np
import pytest

from repro.core.types import TopKResult
from repro.datasets.synthetic import make_ocr_like, make_sift_like
from repro.errors import GpuOutOfMemoryError
from repro.experiments.common import fit_genie_ocr, fit_genie_sift, genie_batch_seconds, reported_distances
from repro.experiments.suite import _oom_guard, systems_for


class TestFitHelpers:
    def test_sift_setup_queries(self):
        dataset = make_sift_like(n=300, n_queries=10, seed=0)
        setup = fit_genie_sift(dataset, m=16, k=3)
        seconds = genie_batch_seconds(setup, dataset.queries[:4], k=3)
        assert seconds > 0

    def test_ocr_setup_uses_rbh(self):
        dataset = make_ocr_like(n=200, n_queries=10, dim=16, seed=0)
        setup = fit_genie_ocr(dataset, m=8, k=3)
        results = setup.index.query(dataset.queries[:2], k=3)
        assert len(results) == 2


class TestReportedDistances:
    def _dataset(self):
        return make_sift_like(n=20, n_queries=2, dim=4, seed=1)

    def test_distances_sorted_per_row(self):
        dataset = self._dataset()
        results = [
            TopKResult(ids=[0, 1, 2], counts=[3, 2, 1]),
            TopKResult(ids=[5, 6, 7], counts=[3, 2, 1]),
        ]
        out = reported_distances(dataset, dataset.queries, results)
        assert out.shape == (2, 3)
        assert (np.diff(out, axis=1) >= -1e-12).all()

    def test_short_rows_padded_with_worst(self):
        dataset = self._dataset()
        results = [
            TopKResult(ids=[0, 1, 2], counts=[3, 2, 1]),
            TopKResult(ids=[5], counts=[3]),
        ]
        out = reported_distances(dataset, dataset.queries, results)
        assert out[1, 1] == out[1, 0]

    def test_empty_result_row_is_inf(self):
        dataset = self._dataset()
        results = [
            TopKResult(ids=[0], counts=[1]),
            TopKResult(ids=np.empty(0, dtype=np.int64), counts=np.empty(0, dtype=np.int64)),
        ]
        out = reported_distances(dataset, dataset.queries, results)
        assert np.isinf(out[1]).all()


class TestSuite:
    def test_oom_guard_converts_to_nan(self):
        def explode():
            raise GpuOutOfMemoryError(1, 0, 0)

        assert np.isnan(_oom_guard(explode))
        assert _oom_guard(lambda: 5.0) == 5.0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            systems_for("imagenet")

    def test_all_fig9_panels_build(self):
        for name in ("tweets", "adult"):
            runners = systems_for(name, n=400)
            assert "GENIE" in runners
            assert all(callable(r) for r in runners.values())
