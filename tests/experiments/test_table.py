"""Tests for the ResultTable container."""

import pytest

from repro.experiments.table import ResultTable


class TestResultTable:
    def _table(self):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a=3, b=None)
        return table

    def test_add_and_column(self):
        table = self._table()
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2.5, None]

    def test_unknown_column_rejected(self):
        table = self._table()
        with pytest.raises(KeyError):
            table.add_row(c=1)
        with pytest.raises(KeyError):
            table.column("z")

    def test_where(self):
        table = self._table()
        assert table.where(a=3) == [{"a": 3, "b": None}]
        assert table.where(a=99) == []

    def test_format_contains_everything(self):
        table = self._table()
        table.notes.append("a note")
        text = table.format()
        assert "== t ==" in text
        assert "2.5" in text
        assert "# a note" in text

    def test_str(self):
        assert str(self._table()).startswith("== t ==")


class TestVolatileColumns:
    def _table(self):
        table = ResultTable(
            title="t",
            columns=["stage", "sim_s", "wall_s"],
            volatile=["wall_s"],
        )
        table.add_row(stage="x", sim_s=1.5, wall_s=0.123456)
        table.add_row(stage="y", sim_s=2.5, wall_s=None)
        return table

    def test_live_format_keeps_volatile_values(self):
        assert "0.123456" in self._table().format()

    def test_stable_format_masks_volatile_values(self):
        text = self._table().format(stable=True)
        assert "0.123456" not in text
        assert ResultTable.STABLE_MASK in text
        assert "1.5" in text and "2.5" in text  # simulated columns intact
        assert "masked for byte-stable artifact: wall_s" in text

    def test_stable_format_is_deterministic_across_values(self):
        # Two runs with different wall clocks -> identical artifacts.
        first = self._table()
        second = self._table()
        second.rows[0]["wall_s"] = 9.87
        assert first.format(stable=True) == second.format(stable=True)

    def test_none_stays_blank_not_masked(self):
        lines = self._table().format(stable=True).splitlines()
        assert lines[4].split()[-1] == ResultTable.STABLE_MASK or "y" in lines[4]

    def test_stable_without_volatile_is_plain_format(self):
        table = ResultTable(title="t", columns=["a"])
        table.add_row(a=1)
        assert table.format(stable=True) == table.format()

    def test_unknown_volatile_column_rejected(self):
        with pytest.raises(KeyError):
            ResultTable(title="t", columns=["a"], volatile=["z"])
