"""Tests for the ResultTable container."""

import pytest

from repro.experiments.table import ResultTable


class TestResultTable:
    def _table(self):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a=3, b=None)
        return table

    def test_add_and_column(self):
        table = self._table()
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2.5, None]

    def test_unknown_column_rejected(self):
        table = self._table()
        with pytest.raises(KeyError):
            table.add_row(c=1)
        with pytest.raises(KeyError):
            table.column("z")

    def test_where(self):
        table = self._table()
        assert table.where(a=3) == [{"a": 3, "b": None}]
        assert table.where(a=99) == []

    def test_format_contains_everything(self):
        table = self._table()
        table.notes.append("a note")
        text = table.format()
        assert "== t ==" in text
        assert "2.5" in text
        assert "# a note" in text

    def test_str(self):
        assert str(self._table()).startswith("== t ==")
