"""Smoke test for the one-shot reproduction report CLI."""

from repro.experiments import report


def test_report_experiment_registry_complete():
    labels = [label for label, _ in report._EXPERIMENTS]
    # Every figure and table of the paper's evaluation is registered.
    for expected in ("Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
                     "Fig. 13", "Fig. 14", "Table I", "Tables II+III",
                     "Table IV", "Table V", "Table VI", "Table VII"):
        assert expected in labels
    assert sum(1 for label in labels if label.startswith("Ablation")) == 4


def test_report_main_runs_quick(capsys):
    assert report.main([]) == 0
    out = capsys.readouterr().out
    assert "Fig. 9" in out
    assert "All experiments regenerated" in out
