"""Tests for the experiment metrics."""

import numpy as np
import pytest

from repro.experiments.metrics import (
    approximation_ratio,
    batch_approximation_ratio,
    classification_report,
    recall_at_k,
    top1_accuracy,
)


class TestApproximationRatio:
    def test_perfect_retrieval(self):
        d = np.array([1.0, 2.0, 3.0])
        assert approximation_ratio(d, d) == pytest.approx(1.0)

    def test_worse_neighbours_raise_ratio(self):
        assert approximation_ratio(np.array([2.0]), np.array([1.0])) == pytest.approx(2.0)

    def test_zero_true_distance_exact_match(self):
        assert approximation_ratio(np.array([0.0, 2.0]), np.array([0.0, 2.0])) == 1.0

    def test_zero_true_nonzero_reported_is_inf(self):
        assert approximation_ratio(np.array([1.0]), np.array([0.0])) == np.inf

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            approximation_ratio(np.array([1.0]), np.array([1.0, 2.0]))

    def test_batch_average(self):
        reported = np.array([[1.0], [3.0]])
        true = np.array([[1.0], [1.0]])
        assert batch_approximation_ratio(reported, true) == pytest.approx(2.0)


class TestClassificationReport:
    def test_perfect(self):
        y = np.array([0, 1, 2, 1])
        report = classification_report(y, y)
        assert report == {"precision": 1.0, "recall": 1.0, "f1": 1.0, "accuracy": 1.0}

    def test_known_confusion(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        report = classification_report(y_true, y_pred)
        assert report["accuracy"] == pytest.approx(0.75)
        # class 0: P=1, R=0.5; class 1: P=2/3, R=1.
        assert report["precision"] == pytest.approx((1.0 + 2 / 3) / 2)
        assert report["recall"] == pytest.approx(0.75)

    def test_all_wrong(self):
        report = classification_report(np.array([0, 1]), np.array([1, 0]))
        assert report["accuracy"] == 0.0

    def test_mismatch(self):
        with pytest.raises(ValueError):
            classification_report(np.array([0]), np.array([0, 1]))


class TestRecallAndAccuracy:
    def test_recall_at_k(self):
        assert recall_at_k(np.array([1, 2, 3]), np.array([2, 9])) == 0.5
        assert recall_at_k(np.array([]), np.array([])) == 1.0

    def test_top1_accuracy(self):
        assert top1_accuracy([1, 2, 3], [1, 0, 3]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            top1_accuracy([1], [1, 2])
