"""Integration tests: every figure/table runner produces the paper's shape.

These run the full experiment pipeline at tiny scale, so they double as
end-to-end integration tests of GENIE + substrates + baselines.
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig8_hash_functions,
    fig9_time_vs_queries,
    fig10_time_vs_cardinality,
    fig11_large_batches,
    fig12_load_balance,
    fig13_cpq_effect,
    fig14_approx_ratio,
    table1_profiling,
    table2_multiload,
    table4_memory,
    table5_ocr_prediction,
    table6_dblp_accuracy,
    table7_sequence_k,
)


class TestFig8:
    def test_bell_shape_below_hoeffding(self):
        table = fig8_hash_functions.run(s_values=[0.1, 0.5, 0.9])
        ms = dict(zip(table.column("similarity"), table.column("required_m")))
        assert ms[0.5] > ms[0.1]
        assert ms[0.5] > ms[0.9]
        assert ms[0.5] < 2174


class TestFig9:
    def test_genie_wins_on_sift(self):
        table = fig9_time_vs_queries.run(datasets=("sift",), query_counts=(32, 64), n=1500)
        genie = table.where(system="GENIE", n_queries=64)[0]["seconds"]
        for system in ("GPU-SPQ", "GPU-LSH", "CPU-Idx", "CPU-LSH"):
            other = table.where(system=system, n_queries=64)[0]["seconds"]
            assert other > 3 * genie, f"{system} should be well above GENIE"

    def test_genie_beats_appgram_on_sequences(self):
        table = fig9_time_vs_queries.run(datasets=("dblp",), query_counts=(16,), n=600)
        genie = table.where(system="GENIE")[0]["seconds"]
        appgram = table.where(system="AppGram")[0]["seconds"]
        assert appgram > genie

    def test_genie_scales_linearly_in_queries(self):
        table = fig9_time_vs_queries.run(datasets=("tweets",), query_counts=(16, 64), n=1000)
        t16 = table.where(system="GENIE", n_queries=16)[0]["seconds"]
        t64 = table.where(system="GENIE", n_queries=64)[0]["seconds"]
        assert 2 <= t64 / t16 <= 8


class TestFig10:
    def test_genie_grows_with_cardinality(self):
        table = fig10_time_vs_cardinality.run(
            datasets=("sift",), cardinalities=(500, 2000), n_queries=32
        )
        small = table.where(system="GENIE", cardinality=500)[0]["seconds"]
        large = table.where(system="GENIE", cardinality=2000)[0]["seconds"]
        assert large > small


class TestFig11:
    def test_genie_faster_and_gpu_lsh_flatter(self):
        table = fig11_large_batches.run(n=1500, query_counts=(128, 512), batch_size=128)
        for row in table.rows:
            assert row["genie_seconds"] < row["gpu_lsh_seconds"]
        lsh_ratio = table.rows[-1]["gpu_lsh_seconds"] / table.rows[0]["gpu_lsh_seconds"]
        genie_ratio = table.rows[-1]["genie_seconds"] / table.rows[0]["genie_seconds"]
        assert lsh_ratio < genie_ratio  # GPU-LSH grows slower than linear


class TestFig12:
    def test_lb_wins_at_low_query_counts(self):
        table = fig12_load_balance.run(n=15_000, query_counts=(1, 16))
        first = table.rows[0]
        assert first["GENIE_LB"] < first["GENIE_noLB"]
        last = table.rows[-1]
        # Saturated regime: the gap (mostly) disappears.
        assert last["GENIE_LB"] <= last["GENIE_noLB"] * 1.25


class TestFig13:
    def test_cpq_beats_spq_selection(self):
        table = fig13_cpq_effect.run(datasets=("sift",), query_counts=(32,), n=1500)
        genie = table.where(system="GENIE")[0]["seconds"]
        gen_spq = table.where(system="GEN-SPQ")[0]["seconds"]
        assert gen_spq > 2 * genie


class TestFig14:
    def test_ratio_shapes(self):
        table = fig14_approx_ratio.run(n=1500, n_queries=24, ks=(1, 32))
        k1 = table.where(k=1)[0]
        k32 = table.where(k=32)[0]
        # GENIE stable and decent; GPU-LSH clearly worse at k=1, converging.
        assert k1["genie_ratio"] < 1.3
        assert k1["gpu_lsh_ratio"] > k1["genie_ratio"]
        assert k32["gpu_lsh_ratio"] < k1["gpu_lsh_ratio"]


class TestTable1:
    def test_all_datasets_profiled(self):
        table = table1_profiling.run(n_queries=16, n=800)
        assert [row["dataset"] for row in table.rows] == ["ocr", "sift", "dblp", "tweets", "adult"]
        for row in table.rows:
            assert row["match"] > 0
            assert row["index_build"] > 0
            # Query transfer is negligible next to matching (paper Table I).
            assert row["query_transfer"] < row["match"]


class TestTables2And3:
    def test_linear_scaling_and_small_extras(self):
        table2, table3 = table2_multiload.run(sizes=(2000, 4000), part_size=2000, n_queries=32)
        assert table2.rows[0]["n_parts"] == 1
        assert table2.rows[1]["n_parts"] == 2
        ratio = table2.rows[1]["genie_seconds"] / table2.rows[0]["genie_seconds"]
        assert 1.5 <= ratio <= 3.0  # linear in the number of parts
        for row in table3.rows:
            assert row["result_merge"] < 0.2 * row["total"]


class TestTable4:
    def test_memory_ratio_in_paper_band(self):
        table = table4_memory.run()
        for row in table.rows:
            assert row["ratio"] > 5  # paper: 1/5 to 1/10 of GEN-SPQ
            assert row["genie_max_batch"] > row["gen_spq_max_batch"]
        sift = table.where(dataset="sift")[0]
        # The paper's headline: GENIE fits >1000 queries, GEN-SPQ cannot
        # reach 256 on the big datasets.
        assert sift["genie_max_batch"] > 1024
        assert sift["gen_spq_max_batch"] < 512


class TestTable5:
    def test_genie_predicts_better_than_gpu_lsh(self):
        table = table5_ocr_prediction.run(n=1500, n_queries=100)
        genie = table.where(method="GENIE")[0]
        gpu_lsh = table.where(method="GPU-LSH")[0]
        assert genie["accuracy"] > gpu_lsh["accuracy"]
        assert genie["accuracy"] > 0.6
        assert genie["f1"] > gpu_lsh["f1"]


class TestTable6:
    def test_accuracy_degrades_gracefully(self):
        table = table6_dblp_accuracy.run(n=800, n_queries=32, fractions=(0.1, 0.4))
        low = table.where(modified_fraction=0.1)[0]["accuracy"]
        high = table.where(modified_fraction=0.4)[0]["accuracy"]
        assert low >= 0.95
        assert high >= 0.6
        assert low >= high


class TestTable7:
    def test_accuracy_rises_with_k_and_time_grows(self):
        table = table7_sequence_k.run(candidate_ks=(4, 64), fractions=(0.3,), n=800, n_queries=32)
        small = table.where(K=4)[0]
        large = table.where(K=64)[0]
        assert large["accuracy"] >= small["accuracy"]
        assert large["seconds"] > small["seconds"]


class TestAblations:
    def test_bitmap_width_ratio_shrinks_with_bound(self):
        table = ablations.run_bitmap_width(bounds=(3, 255))
        assert table.rows[0]["ratio"] > table.rows[1]["ratio"]

    def test_robin_hood_modification_pays(self):
        table = ablations.run_robin_hood()
        with_mod = table.where(expired_overwrite=True)[0]
        without = table.where(expired_overwrite=False)[0]
        assert with_mod["inserts_survived"] >= without["inserts_survived"]
        per_insert_with = with_mod["probes_per_insert"]
        per_insert_without = without["probes_per_insert"]
        assert per_insert_with < per_insert_without

    def test_sublist_length_monotone(self):
        table = ablations.run_sublist_length(lengths=(512, 32768), n=15_000)
        assert table.rows[0]["seconds"] <= table.rows[1]["seconds"]

    def test_rehash_domain_improves_ratio(self):
        table = ablations.run_rehash_domain(domains=(8, 512), n=1200, n_queries=16)
        coarse = table.where(domain=8)[0]["approx_ratio"]
        fine = table.where(domain=512)[0]["approx_ratio"]
        assert math.isfinite(fine)
        assert fine <= coarse * 1.05
