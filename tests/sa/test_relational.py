"""Tests for relational top-k selection (Fig. 1's running example)."""

import numpy as np
import pytest

from repro.errors import ConfigError, QueryError
from repro.sa.relational import AttributeSpec, Discretizer, RelationalIndex


def _fig1_index():
    """The Fig. 1 table: three categorical attributes A, B, C."""
    index = RelationalIndex(
        [
            AttributeSpec("A", "categorical"),
            AttributeSpec("B", "categorical"),
            AttributeSpec("C", "categorical"),
        ]
    )
    index.fit(
        {
            "A": np.array([1, 2, 1]),
            "B": np.array([2, 1, 3]),
            "C": np.array([1, 2, 3]),
        }
    )
    return index


class TestFig1Example:
    def test_q1_counts(self):
        # Q1: 1<=A<=2, B=1, 2<=C<=3 -> counts (1, 3, 2), top-1 = O2.
        index = _fig1_index()
        result = index.query([{"A": (1, 2), "B": (1, 1), "C": (2, 3)}], k=3)[0]
        assert result.as_pairs() == [(1, 3), (2, 2), (0, 1)]

    def test_exact_match_query(self):
        index = _fig1_index()
        result = index.query([{"A": (1, 1), "B": (2, 2), "C": (1, 1)}], k=1)[0]
        assert result.as_pairs() == [(0, 3)]


class TestDiscretizer:
    def test_equal_width_bins(self):
        disc = Discretizer(4).fit(np.array([0.0, 10.0]))
        assert disc.transform(np.array([0.0, 2.4, 5.0, 9.99])).tolist() == [0, 0, 2, 3]

    def test_max_value_clamped_to_last_bin(self):
        disc = Discretizer(4).fit(np.array([0.0, 10.0]))
        assert disc.transform(np.array([10.0, 50.0])).tolist() == [3, 3]

    def test_constant_column(self):
        disc = Discretizer(8).fit(np.array([5.0, 5.0]))
        assert disc.transform(np.array([5.0])).tolist() == [0]

    def test_degenerate_range_bins_stay_valid(self):
        # Regression: lo == hi must not divide by the zero-width span, and
        # every value (inside or outside the fitted point) must land in a
        # valid bin.
        disc = Discretizer(1024).fit(np.array([5.0, 5.0, 5.0]))
        with np.errstate(all="raise"):  # any FP division-by-zero would raise
            codes = disc.transform(np.array([-1e9, 4.999, 5.0, 5.001, 1e9]))
        assert codes.dtype == np.int64
        assert ((codes >= 0) & (codes < 1024)).all()
        assert codes.tolist() == [0, 0, 0, 0, 0]

    def test_empty_fit_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            Discretizer(4).fit(np.array([]))

    def test_non_finite_fit_rejected(self):
        with pytest.raises(ConfigError, match="non-finite"):
            Discretizer(4).fit(np.array([1.0, np.nan]))
        with pytest.raises(ConfigError, match="non-finite"):
            Discretizer(4).fit(np.array([1.0, np.inf]))

    def test_constant_numeric_column_end_to_end(self):
        # A constant column must index and answer range queries instead of
        # producing out-of-range keywords.
        index = RelationalIndex(
            [AttributeSpec("x", "numeric", bins=1024), AttributeSpec("j", "categorical")]
        )
        index.fit({"x": np.full(6, 42.0), "j": np.arange(6) % 2})
        result = index.query([{"x": (42.0, 42.0), "j": (0, 0)}], k=6)[0]
        assert len(result) == 6
        # Even rows match both attributes, odd rows only the constant one.
        for row_id, count in result.as_pairs():
            assert count == (2 if row_id % 2 == 0 else 1)


class TestRelationalIndex:
    def test_numeric_discretization_roundtrip(self):
        index = RelationalIndex([AttributeSpec("x", "numeric", bins=16)])
        values = np.linspace(0, 100, 50)
        index.fit({"x": values})
        result = index.query([{"x": (40, 60)}], k=50)[0]
        for row_id, count in result.as_pairs():
            assert count == 1
            assert 33 <= values[row_id] <= 67  # within a bin of the range

    def test_mixed_schema(self):
        index = RelationalIndex(
            [AttributeSpec("age", "numeric", bins=8), AttributeSpec("job", "categorical")]
        )
        index.fit({"age": np.array([20.0, 40.0, 60.0]), "job": np.array([0, 1, 0])})
        result = index.query([{"age": (15, 45), "job": (0, 0)}], k=3)[0]
        assert result.as_pairs()[0] == (0, 2)

    def test_errors(self):
        with pytest.raises(ConfigError):
            RelationalIndex([])
        index = RelationalIndex([AttributeSpec("x", "numeric")])
        with pytest.raises(ConfigError):
            index.fit({})
        with pytest.raises(ConfigError):
            RelationalIndex([AttributeSpec("x", "bogus")])
        index.fit({"x": np.array([1.0, 2.0])})
        with pytest.raises(QueryError):
            index.query([{"y": (0, 1)}], k=1)
        with pytest.raises(QueryError):
            index.query([{}], k=1)
        with pytest.raises(QueryError):
            RelationalIndex([AttributeSpec("x", "numeric")]).query([{"x": (0, 1)}], k=1)

    def test_ragged_columns_rejected(self):
        index = RelationalIndex(
            [AttributeSpec("a", "categorical"), AttributeSpec("b", "categorical")]
        )
        with pytest.raises(ConfigError):
            index.fit({"a": np.array([0, 1]), "b": np.array([0])})

    def test_empty_range_rejected(self):
        index = RelationalIndex([AttributeSpec("j", "categorical")])
        index.fit({"j": np.array([0, 1, 2])})
        with pytest.raises(QueryError):
            index.query([{"j": (2, 1)}], k=1)
