"""Tests for ordered n-gram decomposition (Example 5.1, Lemma 5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.match_count import match_count
from repro.core.types import Query
from repro.sa.ngram import NgramVocabulary, common_gram_count, count_filter_bound, ordered_ngrams

_text = st.text(alphabet="ab", max_size=20)


class TestOrderedNgrams:
    def test_paper_example_5_1(self):
        assert ordered_ngrams("aabaab", 3) == [
            ("aab", 0),
            ("aba", 0),
            ("baa", 0),
            ("aab", 1),
        ]

    def test_short_sequence_empty(self):
        assert ordered_ngrams("ab", 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ordered_ngrams("abc", 0)

    def test_count(self):
        assert len(ordered_ngrams("abcdef", 2)) == 5


class TestCommonGramCount:
    def test_min_semantics(self):
        # "aa" appears twice in "aaa" and once in "aab": min = 1... plus "ab".
        assert common_gram_count("aaa", "aab", 2) == 1
        assert common_gram_count("aaaa", "aaa", 2) == 2

    def test_disjoint(self):
        assert common_gram_count("aaa", "bbb", 2) == 0


class TestVocabulary:
    def test_encode_grow_and_freeze(self):
        vocab = NgramVocabulary(3)
        grown = vocab.encode("abcabc", grow=True)
        assert grown.size == 4
        frozen = vocab.encode("abcxyz", grow=False)
        assert frozen.size == 1  # only "abc" occurrence 0 is known

    def test_ids_stable(self):
        vocab = NgramVocabulary(2)
        first = vocab.encode("abab", grow=True)
        second = vocab.encode("abab", grow=False)
        assert first.tolist() == second.tolist()


@settings(max_examples=60)
@given(_text, _text)
def test_lemma_5_1_match_count_is_min_gram_count(s, q):
    """The GENIE match count over ordered n-grams equals sum_g min(c_s, c_q)."""
    n = 2
    vocab = NgramVocabulary(n)
    obj = vocab.encode(s, grow=True)
    query_kw = vocab.encode(q, grow=False)
    query = Query.from_keywords(query_kw)
    expected = common_gram_count(s, q, n)
    # Unseen grams in q contribute nothing; encode(grow=False) drops them,
    # which matches min(c_s, c_q) = 0 for grams absent from s... except
    # grams present in s but at occurrence indexes beyond q's. The ordered
    # encoding guarantees exactly min() matches.
    assert match_count(query, obj) == expected


@settings(max_examples=60)
@given(_text, _text, st.integers(0, 6))
def test_theorem_5_1_count_filter_bound(s, q, tau_extra):
    """Theorem 5.1: ed(S,Q) = tau implies MC >= max(|S|,|Q|) - n + 1 - tau*n."""
    from repro.sa.edit_distance import edit_distance

    n = 2
    tau = edit_distance(s, q)
    bound = count_filter_bound(len(q), len(s), tau, n)
    assert common_gram_count(s, q, n) >= bound
