"""Tests for the edit-distance implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sa.edit_distance import edit_distance, edit_distance_bounded, edit_distance_ops

_text = st.text(alphabet="abcd", max_size=15)


def _naive(a: str, b: str) -> int:
    rows = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
    for i in range(len(a) + 1):
        rows[i][0] = i
    for j in range(len(b) + 1):
        rows[0][j] = j
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            rows[i][j] = min(rows[i - 1][j] + 1, rows[i][j - 1] + 1, rows[i - 1][j - 1] + cost)
    return rows[-1][-1]


class TestKnownValues:
    def test_classics(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("flaw", "lawn") == 2
        assert edit_distance("", "") == 0
        assert edit_distance("abc", "") == 3
        assert edit_distance("", "abc") == 3
        assert edit_distance("same", "same") == 0

    def test_unicode(self):
        assert edit_distance("héllo", "hello") == 1


@settings(max_examples=150)
@given(_text, _text)
def test_matches_naive_dp(a, b):
    assert edit_distance(a, b) == _naive(a, b)


@settings(max_examples=80)
@given(_text, _text)
def test_metric_properties(a, b):
    d = edit_distance(a, b)
    assert d == edit_distance(b, a)  # symmetry
    assert (d == 0) == (a == b)  # identity
    assert d >= abs(len(a) - len(b))  # length lower bound
    assert d <= max(len(a), len(b))  # replacement upper bound


@settings(max_examples=60)
@given(_text, _text, _text)
def test_triangle_inequality(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


class TestBounded:
    @settings(max_examples=100)
    @given(_text, _text, st.integers(0, 10))
    def test_consistent_with_exact(self, a, b, bound):
        exact = edit_distance(a, b)
        result = edit_distance_bounded(a, b, bound)
        if exact <= bound:
            assert result == exact
        else:
            assert result > bound

    def test_length_prefilter(self):
        assert edit_distance_bounded("a", "abcdefgh", 3) == 4

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            edit_distance_bounded("a", "b", -1)


class TestOpsModel:
    def test_full_vs_banded(self):
        assert edit_distance_ops(100, 100) == 10_000
        assert edit_distance_ops(100, 100, bound=3) < 10_000
