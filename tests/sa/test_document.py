"""Tests for short-document search (binary vector-space inner product)."""

import pytest

from repro.errors import QueryError
from repro.sa.document import DEFAULT_STOPWORDS, DocumentIndex, WordVocabulary, tokenize

DOCS = [
    "the quick brown fox jumps",
    "a lazy dog sleeps all day",
    "quick dog runs in the park",
    "brown bears eat honey",
]


class TestTokenize:
    def test_lowercases_and_strips_stopwords(self):
        assert tokenize("The Quick FOX") == ["quick", "fox"]

    def test_punctuation_split(self):
        assert tokenize("dogs, cats; birds!") == ["dogs", "cats", "birds"]

    def test_custom_stopwords(self):
        assert tokenize("the dog", stopwords=frozenset()) == ["the", "dog"]

    def test_default_stopwords_exclude_articles(self):
        assert "the" in DEFAULT_STOPWORDS


class TestWordVocabulary:
    def test_dedupe_preserving_first_occurrence(self):
        vocab = WordVocabulary()
        ids = vocab.encode(["b", "a", "b"], grow=True)
        assert ids.tolist() == [0, 1]

    def test_frozen_drops_unknown(self):
        vocab = WordVocabulary()
        vocab.encode(["a"], grow=True)
        assert vocab.encode(["a", "z"], grow=False).tolist() == [0]


class TestDocumentIndex:
    def test_count_equals_inner_product(self):
        index = DocumentIndex().fit(DOCS)
        query = "quick brown dog"
        result = index.query_one(query, k=4)
        for doc_id, count in result.as_pairs():
            assert count == index.inner_product(query, DOCS[doc_id])

    def test_most_overlapping_doc_first(self):
        index = DocumentIndex().fit(DOCS)
        result = index.query_one("lazy dog sleeps", k=1)
        assert int(result.ids[0]) == 1

    def test_batch(self):
        index = DocumentIndex().fit(DOCS)
        results = index.query_batch(["quick fox", "honey bears"], k=2)
        assert int(results[0].ids[0]) == 0
        assert int(results[1].ids[0]) == 3

    def test_unknown_words_raise(self):
        index = DocumentIndex().fit(DOCS)
        with pytest.raises(QueryError):
            index.query_one("zzz qqq", k=1)

    def test_query_before_fit(self):
        with pytest.raises(QueryError):
            DocumentIndex().query_one("dog", k=1)
