"""Tests for GENIE sequence search with Algorithm-2 verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.sa.edit_distance import edit_distance
from repro.sa.sequence import SequenceIndex

TITLES = [
    "approximate string matching",
    "exact string matching",
    "graph pattern mining",
    "locality sensitive hashing",
    "parallel query processing",
    "similarity search on gpu",
    "inverted index compression",
    "sequence alignment methods",
]


class TestBasicSearch:
    def test_exact_query_finds_itself(self):
        index = SequenceIndex(n=3).fit(TITLES)
        result = index.search(TITLES[3], k=1, n_candidates=4)
        assert result.best.sequence_id == 3
        assert result.best.distance == 0

    def test_corrupted_query_recovers_original(self):
        index = SequenceIndex(n=3).fit(TITLES)
        result = index.search("aproximate string matchng", k=1, n_candidates=4)
        assert result.best.sequence_id == 0

    def test_topk_ordering(self):
        index = SequenceIndex(n=3).fit(TITLES)
        result = index.search("exact string matching", k=3, n_candidates=8)
        distances = [m.distance for m in result.matches]
        assert distances == sorted(distances)
        assert result.matches[0].sequence_id == 1

    def test_unknown_grams_empty_result(self):
        index = SequenceIndex(n=3).fit(TITLES)
        result = index.search("zzzzzzzz", k=1, n_candidates=4)
        assert result.best is None

    def test_errors(self):
        index = SequenceIndex(n=3)
        with pytest.raises(QueryError):
            index.search("abc")
        index.fit(TITLES)
        with pytest.raises(QueryError):
            index.search("abc", k=2, n_candidates=1)


class TestCertificate:
    def test_certified_result_is_truly_optimal(self):
        index = SequenceIndex(n=3).fit(TITLES)
        query = "locality sensitve hashing"
        result = index.search(query, k=1, n_candidates=len(TITLES))
        best_true = min(edit_distance(query, t) for t in TITLES)
        assert result.certified
        assert result.best.distance == best_true

    def test_search_until_certified(self):
        index = SequenceIndex(n=3).fit(TITLES)
        result = index.search_until_certified("graph patern mining", k=1)
        assert result.certified
        assert result.best.sequence_id == 2


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_certified_searches_match_brute_force(data):
    """Theorem 5.2: whenever the certificate holds, the result is exact."""
    rng_seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(rng_seed)
    alphabet = "abc"
    titles = [
        "".join(alphabet[int(c)] for c in rng.integers(0, 3, size=rng.integers(6, 14)))
        for _ in range(12)
    ]
    index = SequenceIndex(n=2).fit(titles)
    query = titles[int(rng.integers(0, len(titles)))]
    # Corrupt two characters.
    chars = list(query)
    for _ in range(2):
        chars[int(rng.integers(0, len(chars)))] = alphabet[int(rng.integers(0, 3))]
    query = "".join(chars)

    result = index.search(query, k=1, n_candidates=12)
    if result.certified and result.best is not None:
        best_true = min(edit_distance(query, t) for t in titles)
        assert result.best.distance == best_true


class TestVerificationCost:
    def test_host_charged_for_verification(self):
        index = SequenceIndex(n=3).fit(TITLES)
        index.search(TITLES[0], k=1, n_candidates=4)
        assert index.host.timings.get("verify") > 0

    def test_filter_limits_verifications(self):
        index = SequenceIndex(n=3).fit(TITLES)
        result = index.search(TITLES[0], k=1, n_candidates=len(TITLES))
        # The exact match (distance 0) makes the Theorem-5.1 threshold huge,
        # so verification stops well before the whole shortlist.
        assert result.candidates_verified < len(TITLES)
