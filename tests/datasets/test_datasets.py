"""Tests for the synthetic dataset generators and the registry."""

import numpy as np
import pytest

from repro.datasets.documents import make_document_queries, make_tweets_like, make_vocabulary
from repro.datasets.registry import REGISTRY, dataset_names, load
from repro.datasets.relational import (
    ADULT_SCHEMA,
    adult_schema,
    make_adult_like,
    make_exact_match_queries,
    make_range_queries,
)
from repro.datasets.sequences import make_dblp_like, make_query_set, modify_sequence
from repro.datasets.synthetic import make_ocr_like, make_sift_like, true_knn


class TestPointDatasets:
    def test_sift_shapes(self):
        ds = make_sift_like(n=500, n_queries=20, dim=32)
        assert ds.data.shape == (500, 32)
        assert ds.queries.shape == (20, 32)
        assert ds.dim == 32
        assert len(ds) == 500

    def test_ocr_labels(self):
        ds = make_ocr_like(n=300, n_queries=30, dim=16, n_classes=5)
        assert ds.labels.shape == (300,)
        assert ds.query_labels.shape == (30,)
        assert set(np.unique(ds.labels)) <= set(range(5))
        assert (ds.data >= 0).all()  # intensity-like

    def test_seed_determinism(self):
        a = make_sift_like(n=100, seed=3)
        b = make_sift_like(n=100, seed=3)
        c = make_sift_like(n=100, seed=4)
        assert np.array_equal(a.data, b.data)
        assert not np.array_equal(a.data, c.data)


class TestTrueKnn:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((60, 5))
        queries = rng.standard_normal((7, 5))
        ids, dists = true_knn(data, queries, k=3)
        for qi, qp in enumerate(queries):
            full = np.linalg.norm(data - qp[None, :], axis=1)
            expected = np.sort(full)[:3]
            assert np.allclose(dists[qi], expected)
            assert np.allclose(np.linalg.norm(data[ids[qi]] - qp[None, :], axis=1), expected)

    def test_l1_metric(self):
        data = np.array([[0.0], [1.0], [5.0]])
        ids, dists = true_knn(data, np.array([[0.9]]), k=2, p=1)
        assert ids[0].tolist() == [1, 0]

    def test_blocked_equals_unblocked(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((50, 4))
        queries = rng.standard_normal((10, 4))
        a = true_knn(data, queries, k=4, block=3)
        b = true_knn(data, queries, k=4, block=256)
        assert np.array_equal(a[0], b[0])


class TestSequences:
    def test_dblp_unique_titles(self):
        titles = make_dblp_like(n=200, seed=0)
        assert len(titles) == len(set(titles)) == 200

    def test_modify_fraction_zero_is_identity(self):
        rng = np.random.default_rng(0)
        assert modify_sequence("hello world", 0.0, rng) == "hello world"

    def test_modify_changes_string(self):
        rng = np.random.default_rng(0)
        original = "similarity search on the gpu"
        modified = modify_sequence(original, 0.4, rng)
        assert modified != original

    def test_modify_invalid_fraction(self):
        with pytest.raises(ValueError):
            modify_sequence("abc", 1.5, np.random.default_rng(0))

    def test_query_set_ids_valid(self):
        titles = make_dblp_like(n=50, seed=0)
        queries, ids = make_query_set(titles, 10, 0.2, seed=1)
        assert len(queries) == len(ids) == 10
        assert all(0 <= i < 50 for i in ids)
        assert len(set(ids)) == 10  # sampled without replacement


class TestDocuments:
    def test_tweets_sizes(self):
        docs = make_tweets_like(n=100, vocab_size=50, seed=0)
        assert len(docs) == 100
        assert all(4 <= len(d.split()) <= 14 for d in docs)

    def test_vocabulary(self):
        vocab = make_vocabulary(10)
        assert len(vocab) == 10
        assert "singapore" in vocab
        with pytest.raises(ValueError):
            make_vocabulary(0)

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            make_tweets_like(n=10, zipf_a=1.0)

    def test_document_queries_subset_of_source(self):
        docs = make_tweets_like(n=50, seed=0)
        queries, ids = make_document_queries(docs, 5, drop_fraction=0.5, seed=1)
        for q, i in zip(queries, ids):
            assert set(q.split()) <= set(docs[i].split())


class TestRelational:
    def test_adult_schema_alignment(self):
        columns = make_adult_like(n=500, seed=0)
        assert set(columns) == {name for name, _, _ in ADULT_SCHEMA}
        assert all(len(v) == 500 for v in columns.values())
        assert len(adult_schema()) == len(ADULT_SCHEMA)

    def test_categorical_skew_creates_long_lists(self):
        columns = make_adult_like(n=2000, seed=0)
        sex = columns["sex"]
        top = np.bincount(sex).max()
        assert top > 0.55 * 2000  # heavily skewed, as the LB experiment needs

    def test_exact_match_queries_match_a_row(self):
        columns = make_adult_like(n=100, seed=0)
        queries = make_exact_match_queries(columns, 3, seed=1)
        assert len(queries) == 3
        for ranges in queries:
            assert set(ranges) == set(columns)
            for lo, hi in ranges.values():
                assert lo == hi

    def test_range_queries_widths(self):
        columns = make_adult_like(n=100, seed=0)
        queries = make_range_queries(columns, 2, numeric_halfwidth=5.0, seed=1)
        for ranges in queries:
            lo, hi = ranges["age"]
            assert hi - lo == pytest.approx(10.0)


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["ocr", "sift", "sift_large", "dblp", "tweets", "adult"]

    def test_load_respects_n(self):
        titles = load("dblp", n=25)
        assert len(titles) == 25

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load("imagenet")

    def test_registry_metadata(self):
        assert REGISTRY["sift"].kind == "points"
        assert REGISTRY["adult"].kind == "relational"
