"""Tests for the tau-ANN theory helpers (Theorem 4.1 / Eqn. 9 / Fig. 8)."""

import pytest

from repro.lsh.tann import (
    fig8_curve,
    hoeffding_m,
    practical_m,
    required_m,
    similarity_estimate,
    success_probability,
    tau_from_eps,
)


class TestHoeffding:
    def test_paper_value(self):
        # The paper: m = 2 ln(3/0.06) / 0.06^2 = 2174.
        assert hoeffding_m(0.06, 0.06) == 2174

    def test_tighter_eps_needs_more_functions(self):
        assert hoeffding_m(0.03, 0.06) > hoeffding_m(0.06, 0.06)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            hoeffding_m(0.0, 0.06)
        with pytest.raises(ValueError):
            hoeffding_m(0.06, 1.5)


class TestSuccessProbability:
    def test_is_probability(self):
        for s in (0.0, 0.3, 0.5, 1.0):
            for m in (1, 10, 237):
                assert 0.0 <= success_probability(s, m) <= 1.0

    def test_extreme_similarities_easy(self):
        # s = 0 or 1 is deterministic: any m succeeds.
        assert success_probability(0.0, 5) == pytest.approx(1.0)
        assert success_probability(1.0, 5) == pytest.approx(1.0)

    def test_wider_eps_easier(self):
        assert success_probability(0.5, 100, eps=0.1) >= success_probability(0.5, 100, eps=0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            success_probability(1.5, 10)
        with pytest.raises(ValueError):
            success_probability(0.5, 0)


class TestRequiredM:
    def test_peak_at_half(self):
        # The Fig. 8 peak: 234 with strict integer windows (paper reads 237).
        assert required_m(0.5) == 234

    def test_symmetric_tails_smaller(self):
        assert required_m(0.1) == required_m(0.9) == 88

    def test_far_below_hoeffding(self):
        assert practical_m() < hoeffding_m() / 5

    def test_unreachable_raises(self):
        with pytest.raises(ValueError):
            required_m(0.5, eps=0.001, delta=0.001, m_max=50)


class TestFig8Curve:
    def test_curve_shape(self):
        curve = dict(fig8_curve(s_values=[0.1, 0.3, 0.5, 0.7, 0.9]))
        assert curve[0.5] >= curve[0.3] >= curve[0.1]
        assert curve[0.5] >= curve[0.7] >= curve[0.9]

    def test_default_grid(self):
        curve = fig8_curve()
        assert len(curve) == 19
        # The paper reads ~237 off this simulation; the strict integer
        # windows put the grid maximum at 238 (s = 0.45 / 0.55).
        peak_s, peak_m = max(curve, key=lambda pair: pair[1])
        assert 234 <= peak_m <= 240
        assert 0.4 <= peak_s <= 0.6


class TestEstimates:
    def test_similarity_estimate(self):
        assert similarity_estimate(118, 237) == pytest.approx(118 / 237)
        with pytest.raises(ValueError):
            similarity_estimate(1, 0)

    def test_tau_is_twice_eps(self):
        assert tau_from_eps(0.06) == pytest.approx(0.12)
