"""Tests for the MinHash (Jaccard) and SimHash (angular) families."""

import numpy as np
import pytest

from repro.lsh.minhash import MinHash, jaccard
from repro.lsh.simhash import SimHash, angular_similarity


class TestJaccard:
    def test_values(self):
        assert jaccard([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)
        assert jaccard([1], [1]) == 1.0
        assert jaccard([1], [2]) == 0.0
        assert jaccard([], []) == 1.0


class TestMinHash:
    def test_signature_shape(self):
        family = MinHash(16, seed=0)
        sig = family.hash_points([[1, 2], [3]])
        assert sig.shape == (2, 16)

    def test_identical_sets_collide(self):
        family = MinHash(32, seed=0)
        hp = family.hash_set([1, 2, 3])
        hq = family.hash_set([3, 2, 1])
        assert np.array_equal(hp, hq)

    def test_collision_rate_tracks_jaccard(self):
        family = MinHash(2000, seed=1)
        a = list(range(0, 60))
        b = list(range(20, 80))  # Jaccard = 40/80 = 0.5
        hp = family.hash_set(a)
        hq = family.hash_set(b)
        rate = float(np.mean(hp == hq))
        assert rate == pytest.approx(jaccard(a, b), abs=0.05)

    def test_empty_set_sentinel(self):
        family = MinHash(4, seed=0)
        assert (family.hash_set([]) == -1).all()


class TestAngularSimilarity:
    def test_parallel_vectors(self):
        v = np.array([1.0, 2.0])
        assert angular_similarity(v, 3 * v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert angular_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_opposite_vectors(self):
        v = np.array([1.0, 0.0])
        assert angular_similarity(v, -v) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert angular_similarity(np.zeros(2), np.ones(2)) == 1.0


class TestSimHash:
    def test_signature_binary(self):
        family = SimHash(16, dim=8, seed=0)
        sig = family.hash_points(np.random.default_rng(0).standard_normal((5, 8)))
        assert set(np.unique(sig)) <= {0, 1}

    def test_collision_rate_tracks_angle(self):
        rng = np.random.default_rng(3)
        family = SimHash(3000, dim=16, seed=2)
        a = rng.standard_normal(16)
        b = a + rng.standard_normal(16) * 0.5
        empirical = family.empirical_collision_rate(a, b)
        assert empirical == pytest.approx(family.collision_probability(a, b), abs=0.04)

    def test_dim_mismatch(self):
        family = SimHash(4, dim=8)
        with pytest.raises(ValueError):
            family.hash_points(np.zeros((1, 3)))
