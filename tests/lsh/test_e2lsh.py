"""Tests for p-stable E2LSH: Eqn. 1 (collision prob == psi) empirically."""

import numpy as np
import pytest

from repro.lsh.e2lsh import E2Lsh, psi_l1, psi_l2


class TestPsiClosedForms:
    def test_zero_distance_certain_collision(self):
        assert psi_l2(0.0, 4.0) == 1.0
        assert psi_l1(0.0, 4.0) == 1.0

    def test_strictly_decreasing_in_distance(self):
        for psi in (psi_l1, psi_l2):
            values = [psi(d, 4.0) for d in (0.5, 1.0, 2.0, 4.0, 8.0)]
            assert all(a > b for a, b in zip(values, values[1:]))

    def test_wider_buckets_raise_collision(self):
        assert psi_l2(2.0, 8.0) > psi_l2(2.0, 2.0)
        assert psi_l1(2.0, 8.0) > psi_l1(2.0, 2.0)

    def test_probability_range(self):
        for psi in (psi_l1, psi_l2):
            for d in (0.1, 1.0, 10.0, 100.0):
                assert 0.0 <= psi(d, 4.0) <= 1.0


class TestE2LshFamily:
    def test_signature_shape_and_dtype(self):
        family = E2Lsh(16, dim=8, width=4.0, seed=0)
        sig = family.hash_points(np.zeros((5, 8)))
        assert sig.shape == (5, 16)
        assert sig.dtype == np.int64

    def test_identical_points_always_collide(self):
        family = E2Lsh(32, dim=8, width=4.0, seed=0)
        p = np.random.default_rng(0).standard_normal(8)
        assert family.empirical_collision_rate(p, p) == 1.0

    def test_dim_mismatch_rejected(self):
        family = E2Lsh(4, dim=8, width=4.0)
        with pytest.raises(ValueError):
            family.hash_points(np.zeros((2, 5)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            E2Lsh(4, dim=8, width=0.0)
        with pytest.raises(ValueError):
            E2Lsh(4, dim=8, width=4.0, p=3)
        with pytest.raises(ValueError):
            E2Lsh(0, dim=8, width=4.0)

    @pytest.mark.parametrize("p", [1, 2])
    def test_empirical_collision_matches_psi(self, p):
        """Eqn. 1: the fraction of colliding functions approximates psi_p."""
        rng = np.random.default_rng(42)
        family = E2Lsh(3000, dim=16, width=4.0, p=p, seed=1)
        a = rng.standard_normal(16)
        b = a + rng.standard_normal(16) * 0.2
        empirical = family.empirical_collision_rate(a, b)
        predicted = family.collision_probability(a, b)
        assert empirical == pytest.approx(predicted, abs=0.04)

    def test_collision_monotone_in_distance(self):
        family = E2Lsh(2000, dim=8, width=4.0, seed=3)
        base = np.zeros(8)
        near = base + 0.1
        far = base + 2.0
        assert family.empirical_collision_rate(base, near) > family.empirical_collision_rate(
            base, far
        )

    def test_similarity_is_collision_probability(self):
        family = E2Lsh(4, dim=8, width=4.0)
        a, b = np.zeros(8), np.ones(8)
        assert family.similarity(a, b) == family.collision_probability(a, b)

    def test_determinism_by_seed(self):
        points = np.random.default_rng(0).standard_normal((4, 8))
        one = E2Lsh(8, dim=8, width=4.0, seed=9).hash_points(points)
        two = E2Lsh(8, dim=8, width=4.0, seed=9).hash_points(points)
        assert np.array_equal(one, two)
