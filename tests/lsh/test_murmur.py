"""Tests for MurmurHash3 — scalar reference vs vectorized implementations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.murmur import hash_combine, murmur3_32, murmur3_int64


class TestScalar:
    def test_known_reference_vectors(self):
        # Published MurmurHash3_x86_32 test vectors.
        assert murmur3_32(b"", 0) == 0
        assert murmur3_32(b"", 1) == 0x514E28B7
        assert murmur3_32(b"hello", 0) == 0x248BFA47
        assert murmur3_32(b"hello, world", 0) == 0x149BBB7F

    def test_seed_changes_hash(self):
        assert murmur3_32(b"abc", 0) != murmur3_32(b"abc", 1)


class TestVectorized:
    @settings(max_examples=60)
    @given(st.lists(st.integers(-(2**63), 2**63 - 1), min_size=1, max_size=30), st.integers(0, 2**31 - 1))
    def test_matches_scalar_bytes_hash(self, values, seed):
        arr = np.asarray(values, dtype=np.int64)
        vec = murmur3_int64(arr, seed=seed)
        for v, h in zip(values, vec):
            expected = murmur3_32(int(v).to_bytes(8, "little", signed=True), seed=seed)
            assert int(h) == expected

    def test_deterministic(self):
        arr = np.arange(100, dtype=np.int64)
        assert np.array_equal(murmur3_int64(arr, 7), murmur3_int64(arr, 7))

    def test_distribution_roughly_uniform(self):
        hashes = murmur3_int64(np.arange(100_000, dtype=np.int64)) % 16
        counts = np.bincount(hashes.astype(np.int64), minlength=16)
        assert counts.min() > 100_000 / 16 * 0.9


class TestHashCombine:
    def test_equal_rows_equal_hashes(self):
        rows = np.array([[1, 2, 3], [1, 2, 3], [1, 2, 4]])
        h = hash_combine(rows)
        assert h[0] == h[1]
        assert h[0] != h[2]

    def test_order_matters(self):
        a = hash_combine(np.array([[1, 2]]))
        b = hash_combine(np.array([[2, 1]]))
        assert a[0] != b[0]

    def test_one_dimensional_input(self):
        h = hash_combine(np.array([5, 5, 6]))
        assert h[0] == h[1]
        assert h.shape == (3,)

    @settings(max_examples=30)
    @given(
        st.lists(
            st.lists(st.integers(-100, 100), min_size=3, max_size=3), min_size=2, max_size=10
        )
    )
    def test_collisions_only_for_equal_rows(self, rows):
        arr = np.asarray(rows, dtype=np.int64)
        hashes = hash_combine(arr)
        for i in range(len(rows)):
            for j in range(i + 1, len(rows)):
                if rows[i] == rows[j]:
                    assert hashes[i] == hashes[j]
