"""Tests for the LSH->GENIE transformer and the tau-ANN index."""

import numpy as np
import pytest

from repro.core.engine import GenieConfig
from repro.errors import ConfigError, QueryError
from repro.lsh.e2lsh import E2Lsh
from repro.lsh.transform import LshTransformer, TauAnnIndex


def _family(m=32, dim=8):
    return E2Lsh(m, dim=dim, width=4.0, seed=0)


class TestLshTransformer:
    def test_keyword_matrix_shape_and_ranges(self):
        tr = LshTransformer(_family(), domain=67)
        points = np.random.default_rng(0).standard_normal((10, 8))
        kw = tr.keyword_matrix(points)
        assert kw.shape == (10, 32)
        for j in range(32):
            assert ((kw[:, j] >= j * 67) & (kw[:, j] < (j + 1) * 67)).all()

    def test_corpus_objects_have_m_keywords(self):
        tr = LshTransformer(_family(m=16), domain=1000)
        corpus = tr.to_corpus(np.random.default_rng(0).standard_normal((5, 8)))
        # Distinct functions live in distinct keyword ranges, so objects
        # keep all m keywords after set-dedup.
        assert all(arr.size == 16 for arr in corpus)

    def test_queries_one_item_per_function(self):
        tr = LshTransformer(_family(m=16), domain=1000)
        queries = tr.to_queries(np.zeros((3, 8)))
        assert len(queries) == 3
        assert all(q.num_items == 16 for q in queries)


class TestTauAnnIndex:
    def test_self_query_returns_self_with_full_count(self):
        rng = np.random.default_rng(0)
        points = rng.standard_normal((50, 8))
        index = TauAnnIndex(_family(), domain=67).fit(points)
        results = index.query(points[:5], k=1)
        for i, result in enumerate(results):
            assert int(result.ids[0]) == i
            assert int(result.counts[0]) == index.num_functions

    def test_near_points_rank_high(self):
        rng = np.random.default_rng(1)
        points = rng.standard_normal((100, 8)) * 5
        index = TauAnnIndex(_family(m=64), domain=67).fit(points)
        noisy = points[7] + 0.01 * rng.standard_normal(8)
        result = index.query(noisy[None, :], k=3)[0]
        assert int(result.ids[0]) == 7

    def test_search_returns_similarity_estimates(self):
        points = np.random.default_rng(0).standard_normal((20, 8))
        index = TauAnnIndex(_family(m=16), domain=67).fit(points)
        triples = index.search(points[:2], k=2)
        for ids, counts, estimates in triples:
            assert np.allclose(estimates, counts / 16.0)
            assert (estimates <= 1.0).all()

    def test_count_bound_forced_to_m(self):
        index = TauAnnIndex(_family(m=16), domain=67, config=GenieConfig(k=3))
        assert index.engine.config.count_bound == 16

    def test_errors(self):
        index = TauAnnIndex(_family())
        with pytest.raises(QueryError):
            index.query(np.zeros((1, 8)))
        with pytest.raises(QueryError):
            _ = index.points
        with pytest.raises(ConfigError):
            index.fit(np.zeros((0, 8)))
