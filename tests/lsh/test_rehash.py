"""Tests for the re-hashing mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.rehash import ReHasher


class TestReHasher:
    def test_buckets_within_domain(self):
        rh = ReHasher(num_functions=4, domain=67, seed=0)
        sig = np.random.default_rng(0).integers(-(10**9), 10**9, size=(50, 4))
        buckets = rh.rehash(sig)
        assert buckets.shape == (50, 4)
        assert buckets.min() >= 0
        assert buckets.max() < 67

    def test_equal_signatures_equal_buckets(self):
        rh = ReHasher(num_functions=2, domain=100, seed=0)
        sig = np.array([[5, 9], [5, 9]])
        buckets = rh.rehash(sig)
        assert np.array_equal(buckets[0], buckets[1])

    def test_functions_use_independent_seeds(self):
        rh = ReHasher(num_functions=2, domain=10_000, seed=0)
        # Same signature value in both columns should (almost surely) land
        # in different buckets because each function has its own seed.
        buckets = rh.rehash(np.array([[12345, 12345]]))
        assert buckets[0, 0] != buckets[0, 1]

    def test_keywords_offset_per_function(self):
        rh = ReHasher(num_functions=3, domain=50, seed=0)
        keywords = rh.keywords(np.zeros((4, 3), dtype=np.int64))
        for j in range(3):
            assert (keywords[:, j] >= j * 50).all()
            assert (keywords[:, j] < (j + 1) * 50).all()

    def test_column_mismatch_rejected(self):
        rh = ReHasher(num_functions=3, domain=50)
        with pytest.raises(ValueError):
            rh.rehash(np.zeros((4, 2), dtype=np.int64))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReHasher(0, 10)
        with pytest.raises(ValueError):
            ReHasher(1, 0)

    def test_deterministic_by_seed(self):
        sig = np.arange(12).reshape(4, 3)
        a = ReHasher(3, 67, seed=5).rehash(sig)
        b = ReHasher(3, 67, seed=5).rehash(sig)
        assert np.array_equal(a, b)

    @settings(max_examples=30)
    @given(st.integers(1, 6), st.integers(1, 500), st.integers(0, 1000))
    def test_false_collision_rate_near_one_over_domain(self, m, domain, seed):
        """Distinct signatures collide with probability about 1/D."""
        rh = ReHasher(m, domain, seed=seed)
        sig = np.arange(200 * m, dtype=np.int64).reshape(200, m)
        buckets = rh.rehash(sig)
        # Sanity: all in range (statistical collision-rate asserted in the
        # dedicated statistical test below for a fixed configuration).
        assert buckets.min() >= 0
        assert buckets.max() < domain

    def test_false_collision_statistics(self):
        rh = ReHasher(1, domain=64, seed=0)
        sig = np.arange(20_000, dtype=np.int64).reshape(-1, 1)
        buckets = rh.rehash(sig)[:, 0]
        # Pairwise collision rate between consecutive distinct signatures.
        rate = float(np.mean(buckets[:-1] == buckets[1:]))
        assert rate == pytest.approx(1 / 64, abs=0.01)
