"""Tests for Random Binning Hashing (Laplacian kernel)."""

import numpy as np
import pytest

from repro.lsh.rbh import RandomBinningHash, estimate_kernel_width, laplacian_kernel


class TestLaplacianKernel:
    def test_identical_points(self):
        p = np.ones(4)
        assert laplacian_kernel(p, p, sigma=2.0) == 1.0

    def test_decreasing_in_distance(self):
        p = np.zeros(4)
        assert laplacian_kernel(p, p + 0.5, 2.0) > laplacian_kernel(p, p + 2.0, 2.0)

    def test_known_value(self):
        assert laplacian_kernel(np.zeros(1), np.ones(1), sigma=1.0) == pytest.approx(np.exp(-1))


class TestKernelWidthEstimate:
    def test_positive_and_deterministic(self):
        points = np.random.default_rng(0).standard_normal((100, 8))
        w1 = estimate_kernel_width(points, seed=1)
        w2 = estimate_kernel_width(points, seed=1)
        assert w1 == w2 > 0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            estimate_kernel_width(np.zeros((1, 4)))


class TestRandomBinningHash:
    def test_signature_shape(self):
        family = RandomBinningHash(8, dim=4, sigma=2.0, seed=0)
        sig = family.hash_points(np.zeros((3, 4)))
        assert sig.shape == (3, 8)

    def test_grid_coordinates_shape(self):
        family = RandomBinningHash(8, dim=4, sigma=2.0, seed=0)
        cells = family.grid_coordinates(np.zeros((3, 4)))
        assert cells.shape == (3, 8, 4)

    def test_identical_points_collide_everywhere(self):
        family = RandomBinningHash(16, dim=4, sigma=2.0, seed=0)
        p = np.random.default_rng(0).standard_normal(4)
        assert family.empirical_collision_rate(p, p) == 1.0

    def test_chunked_hashing_consistent(self):
        family = RandomBinningHash(6, dim=4, sigma=2.0, seed=0)
        points = np.random.default_rng(1).standard_normal((20, 4))
        assert np.array_equal(
            family.hash_points(points, chunk=3), family.hash_points(points, chunk=512)
        )

    def test_collision_rate_tracks_kernel(self):
        """Expected collision probability equals the Laplacian kernel."""
        rng = np.random.default_rng(7)
        family = RandomBinningHash(2500, dim=6, sigma=4.0, seed=2)
        p = rng.standard_normal(6)
        q = p + rng.standard_normal(6) * 0.3
        empirical = family.empirical_collision_rate(p, q)
        predicted = family.collision_probability(p, q)
        assert empirical == pytest.approx(predicted, abs=0.05)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            RandomBinningHash(4, dim=4, sigma=0.0)

    def test_dim_mismatch(self):
        family = RandomBinningHash(4, dim=4, sigma=1.0)
        with pytest.raises(ValueError):
            family.hash_points(np.zeros((2, 7)))
