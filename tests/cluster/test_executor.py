"""Tests for ShardedExecutor: exactness, timelines, critical-path profile."""

import numpy as np
import pytest

from repro.cluster import ShardedExecutor, critical_path_profile, merge_shard_results
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.types import Corpus, Query, TopKResult
from repro.errors import ConfigError, QueryError
from repro.gpu.device import Device
from repro.gpu.host import HostCpu
from repro.gpu.stats import StageTimings


def _workload(n=300, n_queries=16, m=6, domain=40, seed=0):
    rng = np.random.default_rng(seed)
    base = np.arange(m) * domain
    corpus = Corpus([base + rng.integers(0, domain, size=m) for _ in range(n)])
    queries = [
        Query.from_keywords(base + rng.integers(0, domain, size=m)) for _ in range(n_queries)
    ]
    return corpus, queries


class TestExactness:
    @pytest.mark.parametrize("strategy", ["range", "hash"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_bit_identical_to_unsharded(self, strategy, n_shards):
        corpus, queries = _workload()
        config = GenieConfig(k=7)
        reference = GenieEngine(config=config).fit(corpus).query(queries, k=7)
        executor = ShardedExecutor(n_shards, config=config, strategy=strategy).fit(corpus)
        sharded = executor.query(queries, k=7)
        for ref, got in zip(reference, sharded):
            assert np.array_equal(ref.ids, got.ids)
            assert np.array_equal(ref.counts, got.counts)
            assert ref.threshold == got.threshold

    def test_batched_path_matches_unbatched(self):
        corpus, queries = _workload()
        executor = ShardedExecutor(3, config=GenieConfig(k=5)).fit(corpus)
        whole = executor.query(queries, k=5)
        batched = ShardedExecutor(3, config=GenieConfig(k=5)).fit(corpus).query(
            queries, k=5, batch_size=4
        )
        for a, b in zip(whole, batched):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.counts, b.counts)

    def test_more_shards_than_objects(self):
        corpus = Corpus([[1, 2], [2, 3], [3, 4]])
        queries = [Query.from_keywords([2, 3])]
        reference = GenieEngine(config=GenieConfig(k=3)).fit(corpus).query(queries, k=3)
        executor = ShardedExecutor(6, config=GenieConfig(k=3)).fit(corpus)
        got = executor.query(queries, k=3)
        assert np.array_equal(reference[0].ids, got[0].ids)
        assert np.array_equal(reference[0].counts, got[0].counts)


class TestTimelines:
    def test_each_shard_runs_on_its_own_device(self):
        corpus, queries = _workload()
        executor = ShardedExecutor(3).fit(corpus)
        executor.query(queries, k=5)
        assert len({id(d) for d in executor.devices}) == 3
        for device in executor.devices:
            assert device.timings.get("match") > 0.0

    def test_profile_is_critical_path_not_sum(self):
        corpus, queries = _workload()
        executor = ShardedExecutor(4).fit(corpus)
        executor.query(queries, k=5)
        shard_totals = [p.query_total() for p in executor.last_shard_profiles]
        merge = executor.last_profile.get("result_merge")
        assert executor.last_profile.query_total() == pytest.approx(
            max(shard_totals) + merge
        )
        assert executor.last_profile.query_total() < sum(shard_totals) + merge

    def test_sharding_beats_single_device_on_scan_heavy_work(self):
        # An OCR-shaped workload big enough for the match scan to dominate
        # the per-query floors (query/result transfer, select, merge).
        corpus, queries = _workload(n=12000, n_queries=64, m=32, domain=1024)
        single = ShardedExecutor(1).fit(corpus)
        single.query(queries, k=10)
        quad = ShardedExecutor(4).fit(corpus)
        quad.query(queries, k=10)
        assert quad.last_profile.query_total() < single.last_profile.query_total()

    def test_explicit_devices_are_adopted(self):
        devices = [Device(), Device()]
        executor = ShardedExecutor(devices=devices)
        assert executor.devices is devices
        with pytest.raises(ConfigError, match="match"):
            ShardedExecutor(n_shards=3, devices=devices)


class TestErrors:
    def test_unfitted_query_rejected(self):
        with pytest.raises(QueryError, match="fitted"):
            ShardedExecutor(2).query([Query.from_keywords([1])])

    def test_empty_batch_rejected(self):
        corpus, _ = _workload(n=10)
        with pytest.raises(QueryError, match="empty"):
            ShardedExecutor(2).fit(corpus).query([])

    def test_bad_k_rejected(self):
        corpus, queries = _workload(n=10)
        with pytest.raises(QueryError, match="k must be"):
            ShardedExecutor(2).fit(corpus).query(queries, k=0)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ConfigError):
            ShardedExecutor(0)


class TestMergeHelpers:
    def test_merge_ties_break_on_global_id(self):
        host = HostCpu()
        # Two shards, both with count-3 candidates; global ids interleave.
        shard_a = [TopKResult(ids=np.array([0, 1]), counts=np.array([3, 2]))]
        shard_b = [TopKResult(ids=np.array([0, 1]), counts=np.array([3, 3]))]
        maps = [np.array([4, 9]), np.array([2, 7])]
        merged, seconds = merge_shard_results([shard_a, shard_b], maps, 1, 3, host)
        assert merged[0].ids.tolist() == [2, 4, 7]
        assert merged[0].counts.tolist() == [3, 3, 3]
        assert merged[0].threshold == 3
        assert seconds > 0.0
        assert host.timings.get("result_merge") == pytest.approx(seconds)

    def test_merge_fewer_than_k_has_zero_threshold(self):
        merged, _ = merge_shard_results(
            [[TopKResult(ids=np.array([0]), counts=np.array([2]))]],
            [np.array([5])],
            1,
            10,
            HostCpu(),
        )
        assert merged[0].ids.tolist() == [5]
        assert merged[0].threshold == 0

    def test_critical_path_profile_picks_slowest(self):
        fast, slow = StageTimings(), StageTimings()
        fast.add("match", 1.0)
        slow.add("match", 2.0)
        slow.add("select", 0.5)
        picked = critical_path_profile([fast, slow])
        assert picked.seconds == slow.seconds
        picked.add("match", 1.0)  # a copy: the original is untouched
        assert slow.get("match") == 2.0

    def test_critical_path_of_nothing_is_empty(self):
        assert critical_path_profile([]).seconds == {}
