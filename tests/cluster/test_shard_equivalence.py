"""Property test: sharded execution is bit-identical to one unsharded index.

Shards partition the objects, so every match count is complete within its
shard and the candidate merge must reproduce the unsharded top-k exactly:
same ids, same counts, same count-desc / id-asc tie order, same threshold
— for any corpus, query batch, shard count and partition strategy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardedExecutor
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.types import Corpus, Query

corpora = st.lists(st.lists(st.integers(0, 15), max_size=6), min_size=1, max_size=25)
query_batches = st.lists(
    st.lists(  # one query = a list of items
        st.lists(st.integers(0, 25), max_size=4),  # items may be empty or miss the index
        max_size=4,  # queries may have no items at all
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=60, deadline=None)
@given(
    raw_objects=corpora,
    raw_queries=query_batches,
    n_shards=st.integers(1, 5),
    strategy=st.sampled_from(["range", "hash"]),
    seed=st.integers(0, 3),
    k=st.integers(1, 8),
)
def test_sharded_equals_unsharded(raw_objects, raw_queries, n_shards, strategy, seed, k):
    corpus = Corpus(raw_objects)
    queries = [Query(items=items) for items in raw_queries]
    config = GenieConfig(k=k)

    reference = GenieEngine(config=config).fit(corpus).query(queries, k=k)
    executor = ShardedExecutor(
        n_shards, config=config, strategy=strategy, seed=seed
    ).fit(Corpus(raw_objects))
    sharded = executor.query(queries, k=k)

    assert len(sharded) == len(reference)
    for ref, got in zip(reference, sharded):
        assert np.array_equal(ref.ids, got.ids)          # same ids, same tie order
        assert np.array_equal(ref.counts, got.counts)    # same counts
        assert got.ids.dtype == ref.ids.dtype
        assert ref.threshold == got.threshold


@settings(max_examples=25, deadline=None)
@given(
    raw_objects=corpora,
    raw_queries=query_batches,
    n_shards=st.integers(2, 4),
)
def test_shard_count_never_changes_answers(raw_objects, raw_queries, n_shards):
    # Different shard counts of the same corpus agree with each other too.
    corpus_a, corpus_b = Corpus(raw_objects), Corpus(raw_objects)
    queries = [Query(items=items) for items in raw_queries]
    one = ShardedExecutor(1).fit(corpus_a).query(queries, k=4)
    many = ShardedExecutor(n_shards, strategy="hash", seed=7).fit(corpus_b).query(queries, k=4)
    for a, b in zip(one, many):
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.counts, b.counts)
