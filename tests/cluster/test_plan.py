"""Tests for ShardPlan: partitioning, id maps, determinism, validation."""

import numpy as np
import pytest

from repro.cluster import PARTITION_STRATEGIES, ShardPlan
from repro.core.types import Corpus
from repro.errors import ConfigError


def _corpus(n=20, seed=0):
    rng = np.random.default_rng(seed)
    return Corpus([rng.integers(0, 30, size=rng.integers(1, 6)) for _ in range(n)])


class TestBuild:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 25])
    def test_partitions_exactly_once(self, strategy, n_shards):
        corpus = _corpus(n=20)
        plan = ShardPlan.build(corpus, n_shards, strategy=strategy)
        plan.validate()
        assert plan.n_shards == n_shards
        assert sum(plan.sizes()) == len(corpus)

    def test_range_shards_are_contiguous_and_balanced(self):
        plan = ShardPlan.build(_corpus(n=10), 4, strategy="range")
        for shard in plan.shards:
            ids = shard.global_ids
            assert np.array_equal(ids, np.arange(ids[0], ids[0] + ids.size))
        sizes = plan.sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_global_ids_sorted_ascending(self):
        for strategy in PARTITION_STRATEGIES:
            plan = ShardPlan.build(_corpus(n=40), 5, strategy=strategy)
            for shard in plan.shards:
                assert np.all(np.diff(shard.global_ids) > 0) or shard.global_ids.size <= 1

    def test_shard_corpora_match_global_objects(self):
        corpus = _corpus(n=30)
        plan = ShardPlan.build(corpus, 3, strategy="hash", seed=5)
        for shard in plan.shards:
            for local, global_id in enumerate(shard.global_ids):
                assert np.array_equal(
                    shard.corpus.keyword_arrays[local],
                    np.unique(corpus.keyword_arrays[int(global_id)]),
                )

    def test_hash_partition_is_deterministic_per_seed(self):
        corpus = _corpus(n=50)
        a = ShardPlan.build(corpus, 4, strategy="hash", seed=1)
        b = ShardPlan.build(corpus, 4, strategy="hash", seed=1)
        c = ShardPlan.build(corpus, 4, strategy="hash", seed=2)
        for sa, sb in zip(a.shards, b.shards):
            assert np.array_equal(sa.global_ids, sb.global_ids)
        assert any(
            not np.array_equal(sa.global_ids, sc.global_ids)
            for sa, sc in zip(a.shards, c.shards)
        )

    def test_more_shards_than_objects_leaves_empty_shards(self):
        plan = ShardPlan.build(_corpus(n=3), 8, strategy="range")
        plan.validate()
        assert sum(plan.sizes()) == 3
        assert plan.n_shards == 8

    def test_raw_object_lists_are_adopted(self):
        plan = ShardPlan.build([[1, 2], [3]], 2)
        plan.validate()
        assert plan.n_objects == 2


class TestValidationAndStats:
    def test_bad_shard_count_rejected(self):
        with pytest.raises(ConfigError, match="n_shards"):
            ShardPlan.build(_corpus(), 0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError, match="unknown shard strategy"):
            ShardPlan.build(_corpus(), 2, strategy="modulo")

    @pytest.mark.parametrize("seed", [-1, 2**64])
    def test_out_of_range_seed_rejected(self, seed):
        # np.uint64(seed) would raise a raw OverflowError deep in the mix.
        with pytest.raises(ConfigError, match="seed must fit in 64 bits"):
            ShardPlan.build(_corpus(), 2, strategy="hash", seed=seed)

    def test_max_valid_seed_accepted(self):
        ShardPlan.build(_corpus(), 2, strategy="hash", seed=2**64 - 1).validate()

    def test_validate_catches_broken_partition(self):
        plan = ShardPlan.build(_corpus(n=10), 2)
        plan.shards[0].global_ids = plan.shards[0].global_ids + 1  # overlap + gap
        with pytest.raises(ConfigError, match="partition"):
            plan.validate()

    def test_entries_and_imbalance(self):
        # All heavy objects first: range splits them unevenly, hash evens out.
        objects = [list(range(12)) for _ in range(10)] + [[0] for _ in range(10)]
        range_plan = ShardPlan.build(objects, 2, strategy="range")
        hash_plan = ShardPlan.build(objects, 2, strategy="hash", seed=0)
        assert sum(range_plan.entries()) == sum(hash_plan.entries())
        assert range_plan.size_imbalance() > hash_plan.size_imbalance()

    def test_empty_corpus_imbalance_is_zero(self):
        plan = ShardPlan.build(Corpus([]), 2)
        assert plan.size_imbalance() == 0.0


class TestShardKeywords:
    """ShardSlice.keywords(): the plan-level routing bounds.

    The planner routes against the *fitted* shard index's keyword_array
    (ShardedIndexHandle._plan_shards); the plan-level view must stay
    bit-identical to it — it is the same partition-bounds surface, usable
    before any index is built (e.g. by rebalancing tooling).
    """

    def test_matches_fitted_index_keyword_array(self):
        from repro.core.inverted_index import InvertedIndex

        objects = [[0, 5], [5, 9], [2], [], [9, 11, 3]]
        plan = ShardPlan.build(objects, 3, strategy="hash", seed=1)
        for shard in plan.shards:
            index = InvertedIndex.build(shard.corpus)
            assert np.array_equal(shard.keywords(), index.keyword_array)

    def test_cached_and_empty_slice(self):
        plan = ShardPlan.build(Corpus([[1, 2]]), 2)  # second shard empty
        empty = [s for s in plan.shards if len(s) == 0][0]
        assert empty.keywords().size == 0
        full = [s for s in plan.shards if len(s)][0]
        assert full.keywords() is full.keywords()  # cached after first call

    def test_routes_like_the_session_planner(self):
        from repro.core.types import Query
        from repro.plan import route_queries

        objects = [[0, 1], [1, 2], [4, 5], [5, 6]]
        plan = ShardPlan.build(objects, 2, strategy="range")
        routes = route_queries(
            [Query.from_keywords([0]), Query.from_keywords([6])],
            tuple(shard.keywords() for shard in plan.shards),
        )
        assert routes[0].tolist() == [0]
        assert routes[1].tolist() == [1]
