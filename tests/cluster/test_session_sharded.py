"""Tests for ShardedIndexHandle: session residency, profiles, serving."""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.cluster import ShardedIndexHandle
from repro.core.engine import GenieConfig
from repro.errors import ConfigError, QueryError
from repro.serve import BatchPolicy, GenieServer


def _objects(n=400, m=6, domain=40, seed=0):
    rng = np.random.default_rng(seed)
    base = np.arange(m) * domain
    return [base + rng.integers(0, domain, size=m) for _ in range(n)]


def _queries(n=12, m=6, domain=40, seed=1):
    rng = np.random.default_rng(seed)
    base = np.arange(m) * domain
    return [base + rng.integers(0, domain, size=m) for _ in range(n)]


class TestCreateIndex:
    def test_shards_returns_sharded_handle(self):
        session = GenieSession()
        handle = session.create_index(_objects(), model="raw", name="x", shards=4)
        assert isinstance(handle, ShardedIndexHandle)
        assert handle.num_shards == 4
        assert handle.num_parts == 4
        assert handle.plan.strategy == "range"

    def test_search_matches_unsharded_index(self):
        objects, queries = _objects(), _queries()
        session = GenieSession()
        plain = session.create_index(objects, model="raw", name="plain")
        for strategy in ("range", "hash"):
            sharded = session.create_index(
                objects, model="raw", name=f"sharded-{strategy}",
                shards=3, shard_strategy=strategy,
            )
            expected = plain.search(queries, k=8)
            got = sharded.search(queries, k=8)
            for a, b in zip(expected.results, got.results):
                assert np.array_equal(a.ids, b.ids)
                assert np.array_equal(a.counts, b.counts)

    def test_shards_exclusive_with_part_size(self):
        session = GenieSession()
        with pytest.raises(ConfigError, match="mutually exclusive"):
            session.create_index(_objects(), model="raw", shards=2, part_size=100)
        with pytest.raises(ConfigError, match="mutually exclusive"):
            session.create_index(_objects(), model="raw", shards=2, swap_parts=True)

    def test_bad_shard_count_rejected(self):
        session = GenieSession()
        with pytest.raises(ConfigError, match="shards must be"):
            session.create_index(_objects(), model="raw", shards=0)

    def test_shard_options_without_shards_rejected(self):
        # A forgotten shards=N must not silently build an unsharded index.
        session = GenieSession()
        with pytest.raises(ConfigError, match="require shards=N"):
            session.create_index(_objects(), model="raw", shard_strategy="hash")
        with pytest.raises(ConfigError, match="require shards=N"):
            session.create_index(_objects(), model="raw", shard_seed=3)

    def test_unknown_strategy_rejected_before_name_registers(self):
        session = GenieSession()
        with pytest.raises(ConfigError, match="unknown shard strategy"):
            session.create_index(_objects(), model="raw", name="x",
                                 shards=2, shard_strategy="zip")
        assert "x" not in session.indexes
        # The corrected retry under the same name works.
        session.create_index(_objects(), model="raw", name="x", shards=2)

    def test_bad_seed_rejected_before_name_registers(self):
        session = GenieSession()
        with pytest.raises(ConfigError, match="seed must fit in 64 bits"):
            session.create_index(_objects(), model="raw", name="x",
                                 shards=2, shard_strategy="hash", shard_seed=-1)
        assert "x" not in session.indexes

    def test_device_pool_reused_across_indexes(self):
        session = GenieSession()
        a = session.create_index(_objects(seed=0), model="raw", name="a", shards=3)
        b = session.create_index(_objects(seed=1), model="raw", name="b", shards=2)
        assert a.shard_devices()[0] is session.device
        assert b.shard_devices()[0] is session.device
        assert a.shard_devices()[1] is b.shard_devices()[1]
        assert len(session.shard_devices(3)) == 3


class TestResidency:
    def test_each_shard_is_its_own_residency_unit(self):
        session = GenieSession()
        handle = session.create_index(_objects(), model="raw", name="x", shards=4)
        assert handle.resident_parts == 4
        assert session.resident_parts() == [("x", 0), ("x", 1), ("x", 2), ("x", 3)]
        assert session.resident_bytes == handle.device_bytes

    def test_evicted_shards_swap_back_in_on_search(self):
        session = GenieSession()
        handle = session.create_index(_objects(), model="raw", name="x", shards=3)
        session.evict("x")
        assert handle.resident_parts == 0
        result = handle.search(_queries(), k=5)
        assert result.swapped_in == 3
        assert handle.resident_parts == 3

    def test_budget_pressure_evicts_lru_shards(self):
        objects = _objects(n=600)
        probe = GenieSession()
        bytes_per_shard = probe.create_index(
            objects, model="raw", name="probe", shards=3
        ).device_bytes // 3

        session = GenieSession(memory_budget=bytes_per_shard * 4)
        session.create_index(objects, model="raw", name="x", shards=3)
        session.create_index(objects, model="raw", name="y", shards=3)
        # Budget holds 4 shards; fitting y (3 shards) evicted 2 of x's.
        assert session.index("y").resident_parts == 3
        assert session.index("x").resident_parts == 1
        # Searching x swaps all three of its shards back in: x's surviving
        # shard is the LRU entry, so x0's own attach evicts it first.
        result = session.index("x").search(_queries(), k=5)
        assert result.swapped_in == 3
        assert len(result.evicted) == 3
        assert session.index("x").resident_parts == 3

    def test_device_oom_evicts_same_device_parts_only(self):
        # Each pool device fits one shard part; make the LRU-first
        # resident live on a *different* device than the attach that
        # OOMs, and check the eviction targets the OOMing device.
        from repro.gpu.device import Device
        from repro.gpu.specs import small_device

        objects = _objects(n=300)  # 3 shards x 100 objs x 6 kw x 4B = 2400B/part
        device = Device(small_device(3000))
        session = GenieSession(device=device, memory_budget=1 << 30)
        a = session.create_index(objects, model="raw", name="a", shards=3)
        session._ensure_resident(a._parts[0])  # LRU bump: order is a1, a2, a0
        b = session.create_index(_objects(n=100, seed=1), model="raw", name="b", shards=1)
        # b's only shard lives on pool device 0: a0 (device 0) is evicted
        # even though a1 (device 1) was least recently used.
        assert b.resident
        assert [p.position for p in a._parts if p.resident] == [1, 2]

    def test_oversized_shard_error_advises_more_shards_not_part_size(self):
        # part_size= is rejected for sharded indexes, so the advisory
        # budget error must not recommend it.
        objects = _objects(n=600)
        probe = GenieSession()
        shard_bytes = probe.create_index(
            objects, model="raw", name="probe", shards=2
        ).device_bytes // 2
        session = GenieSession(memory_budget=shard_bytes - 1)
        with pytest.raises(ConfigError, match="raise shards= or the memory budget"):
            session.create_index(objects, model="raw", name="x", shards=2)

    def test_drop_releases_every_shard(self):
        session = GenieSession()
        session.create_index(_objects(), model="raw", name="x", shards=4)
        session.drop("x")
        assert session.resident_bytes == 0
        assert "x" not in session.indexes


class TestProfiles:
    def test_result_carries_shard_profiles(self):
        session = GenieSession()
        handle = session.create_index(_objects(), model="raw", name="x", shards=3)
        result = handle.search(_queries(), k=5)
        assert result.shard_profiles is not None
        assert len(result.shard_profiles) == 3
        assert handle.shard_profiles == result.shard_profiles
        merge = result.profile.get("result_merge")
        assert result.profile.query_total() == pytest.approx(
            max(p.query_total() for p in result.shard_profiles) + merge
        )

    def test_all_skipped_queries_still_report_per_shard_profiles(self):
        # skip_empty models can drop every query; the result is still a
        # sharded result — one (empty) profile per shard, never ().
        session = GenieSession()
        handle = session.create_index(
            ["abcdef", "bcdefg"], model="ngram", n=3, name="g", shards=2
        )
        result = handle.search(["QQQQQQ"], k=2)
        assert result.shard_profiles is not None
        assert len(result.shard_profiles) == 2
        assert all(p.query_total() == 0.0 for p in result.shard_profiles)

    def test_unsharded_result_has_no_shard_profiles(self):
        session = GenieSession()
        handle = session.create_index(_objects(), model="raw", name="x")
        assert handle.search(_queries(), k=5).shard_profiles is None

    def test_refit_replaces_shards(self):
        session = GenieSession()
        handle = session.create_index(_objects(seed=0), model="raw", name="x", shards=2)
        first_plan = handle.plan
        handle.fit(_objects(seed=2))
        assert handle.plan is not first_plan
        assert handle.fit_epoch == 2
        assert handle.resident_parts == 2


class TestServing:
    def test_server_records_per_shard_busy_and_imbalance(self):
        session = GenieSession()
        session.create_index(_objects(), model="raw", name="x", shards=3)
        server = GenieServer(session, policy=BatchPolicy.micro(max_batch=8, max_wait=1.0),
                             cache_size=None)
        queries = _queries(n=8)
        futures = [server.submit("x", q, k=5) for q in queries]
        server.drain()
        direct = session.index("x").search(queries, k=5)
        for future, expected in zip(futures, direct.results):
            assert np.array_equal(future.result().ids, expected.ids)
        snap = server.snapshot()
        assert snap["sharded_batches"] >= 1
        assert set(snap["shard_busy_seconds"]) == {0, 1, 2}
        assert all(v > 0 for v in snap["shard_busy_seconds"].values())
        assert snap["shard_imbalance"] >= 1.0

    def test_batch_service_time_is_critical_path(self):
        session = GenieSession()
        session.create_index(_objects(), model="raw", name="x", shards=3)
        server = GenieServer(session, policy=BatchPolicy.micro(max_batch=8, max_wait=1.0),
                             cache_size=None)
        future = server.submit("x", _queries(n=1)[0], k=5)
        server.drain()
        snap = server.snapshot()
        shard_busy = snap["shard_busy_seconds"].values()
        assert snap["busy_seconds"] < sum(shard_busy)
        assert snap["busy_seconds"] > max(shard_busy)
        assert future.metadata.service_time == pytest.approx(snap["busy_seconds"])


class TestShardProfilesAfterFailure:
    def test_failed_search_clears_shard_profiles(self):
        # A monitoring caller must never read a previous search's
        # per-shard profiles as if they belonged to a failed one.
        session = GenieSession()
        handle = session.create_index(_objects(), model="raw", name="x", shards=3)
        ok = handle.search(_queries(n=2), k=3)
        assert handle.shard_profiles == ok.shard_profiles
        assert len(handle.shard_profiles) == 3
        with pytest.raises(QueryError):
            handle.search(_queries(n=2), k=0)
        assert handle.shard_profiles == ()
        again = handle.search(_queries(n=2), k=3)
        assert handle.shard_profiles == again.shard_profiles
