"""Cross-module integration tests.

These exercise whole pipelines end to end and check that independent
implementations of the same semantics (GENIE fast path, reference c-PQ,
GPU-SPQ full scan, CPU-Idx) agree on real workloads.
"""

import numpy as np
import pytest

from repro.baselines.cpu_idx import CpuIdx
from repro.baselines.gpu_spq import GpuSpq
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.load_balance import LoadBalanceConfig
from repro.core.multiload import MultiLoadGenie
from repro.core.types import Corpus, Query
from repro.datasets.synthetic import make_sift_like, true_knn
from repro.errors import QueryError
from repro.gpu.device import Device
from repro.lsh import E2Lsh, MinHash, SimHash, TauAnnIndex
from repro.lsh.transform import LshTransformer


def _count_lists(results):
    return [sorted(r.counts.tolist(), reverse=True) for r in results]


class TestSystemsAgree:
    """GENIE, GEN-SPQ, GPU-SPQ and CPU-Idx must return identical counts."""

    def setup_method(self):
        rng = np.random.default_rng(11)
        self.corpus = Corpus([rng.integers(0, 60, size=8) for _ in range(300)])
        self.queries = [Query.from_keywords(rng.integers(0, 60, size=8)) for _ in range(10)]

    def test_four_way_agreement(self):
        k = 7
        genie = GenieEngine(config=GenieConfig(k=k)).fit(self.corpus)
        gen_spq = GenieEngine(config=GenieConfig(k=k, use_cpq=False)).fit(self.corpus)
        gpu_spq = GpuSpq(device=Device()).fit(self.corpus)
        cpu_idx = CpuIdx().fit(self.corpus)

        expected = _count_lists(genie.query(self.queries))
        assert _count_lists(gen_spq.query(self.queries)) == expected
        assert _count_lists(gpu_spq.query(self.queries, k=k)) == expected
        assert _count_lists(cpu_idx.query(self.queries, k=k)) == expected

    def test_load_balance_and_multiload_agree(self):
        k = 5
        plain = GenieEngine(config=GenieConfig(k=k)).fit(self.corpus)
        balanced = GenieEngine(
            config=GenieConfig(k=k, load_balance=LoadBalanceConfig(max_sublist_len=16))
        ).fit(self.corpus)
        multi = MultiLoadGenie(config=GenieConfig(k=k), part_size=77).fit(self.corpus)
        expected = _count_lists(plain.query(self.queries))
        assert _count_lists(balanced.query(self.queries)) == expected
        assert _count_lists(multi.query(self.queries)) == expected


class TestQueryBatched:
    def test_matches_single_batch(self):
        rng = np.random.default_rng(2)
        corpus = Corpus([rng.integers(0, 40, size=6) for _ in range(150)])
        queries = [Query.from_keywords(rng.integers(0, 40, size=6)) for _ in range(20)]
        engine = GenieEngine(config=GenieConfig(k=4)).fit(corpus)
        whole = _count_lists(engine.query(queries))
        batched = _count_lists(engine.query_batched(queries, batch_size=3))
        assert batched == whole

    def test_auto_batch_size(self):
        corpus = Corpus([[i % 5] for i in range(50)])
        engine = GenieEngine(config=GenieConfig(k=2)).fit(corpus)
        results = engine.query_batched([Query.from_keywords([0])] * 7)
        assert len(results) == 7

    def test_empty_rejected(self):
        corpus = Corpus([[0]])
        engine = GenieEngine(config=GenieConfig(k=1)).fit(corpus)
        with pytest.raises(QueryError):
            engine.query_batched([])


class TestAnnQualityEndToEnd:
    def test_e2lsh_recall_beats_random(self):
        dataset = make_sift_like(n=1500, n_queries=30, seed=3)
        family = E2Lsh(64, dim=dataset.dim, width=4.0, seed=4)
        index = TauAnnIndex(family, domain=67).fit(dataset.data)
        true_ids, _ = true_knn(dataset.data, dataset.queries, 10)
        hits = 0
        for result, tids in zip(index.query(dataset.queries, k=10), true_ids):
            hits += len(set(result.ids.tolist()) & set(tids.tolist()))
        recall = hits / (30 * 10)
        assert recall > 0.5  # far above the ~0.7% random baseline

    def test_minhash_jaccard_ann(self):
        """End-to-end Jaccard search: MinHash -> re-hash -> GENIE."""
        rng = np.random.default_rng(5)
        sets = [set(map(int, rng.choice(200, size=25, replace=False))) for _ in range(120)]
        family = MinHash(num_functions=48, seed=6)
        transformer = LshTransformer(family, domain=512, seed=7)
        corpus = Corpus(list(transformer.rehasher.keywords(family.hash_points(sets))))
        engine = GenieEngine(config=GenieConfig(k=3, count_bound=48)).fit(corpus)

        probe = set(list(sets[11])[:20]) | {999}  # high-Jaccard variant of set 11
        signature = family.hash_points([probe])
        query = Query.from_keywords(transformer.rehasher.keywords(signature)[0])
        result = engine.query([query])[0]
        assert int(result.ids[0]) == 11

    def test_simhash_angular_ann(self):
        """End-to-end angular search: SimHash -> GENIE."""
        rng = np.random.default_rng(8)
        points = rng.standard_normal((150, 24))
        family = SimHash(num_functions=96, dim=24, seed=9)
        index = TauAnnIndex(family, domain=8, seed=10).fit(points)
        probe = 3.0 * points[42]  # same direction, different norm
        result = index.query(probe[None, :], k=1)[0]
        assert int(result.ids[0]) == 42


class TestProfilesConsistent:
    def test_device_total_is_sum_of_profiles(self):
        corpus = Corpus([[i % 9] for i in range(60)])
        device = Device()
        engine = GenieEngine(device=device, config=GenieConfig(k=3)).fit(corpus)
        fit_total = device.timings.total
        engine.query([Query.from_keywords([1])])
        first = engine.last_profile.query_total()
        engine.query([Query.from_keywords([2])])
        second = engine.last_profile.query_total()
        assert device.timings.total == pytest.approx(fit_total + first + second)
