"""Tests for the CPU baselines: CPU-Idx, CPU-LSH, AppGram, GEN-SPQ factory."""

import numpy as np
import pytest

from repro.baselines.appgram import AppGram
from repro.baselines.cpu_idx import CpuIdx
from repro.baselines.cpu_lsh import CpuLsh
from repro.baselines.gen_spq import make_gen_spq
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.match_count import brute_force_topk
from repro.core.types import Corpus, Query
from repro.errors import QueryError
from repro.sa.edit_distance import edit_distance

CORPUS = Corpus([[i % 7, 7 + (i * 3) % 5] for i in range(40)])


class TestCpuIdx:
    def test_matches_brute_force(self):
        baseline = CpuIdx().fit(CORPUS)
        query = Query.from_keywords([0, 7, 9])
        result = baseline.query([query], k=5)[0]
        expected = [(i, c) for i, c in brute_force_topk(query, CORPUS, 5) if c > 0]
        assert result.as_pairs() == expected

    def test_sequential_time_scales_linearly(self):
        baseline = CpuIdx().fit(CORPUS)
        baseline.query([Query.from_keywords([0])] * 2, k=3)
        two = baseline.last_profile.query_total()
        baseline.query([Query.from_keywords([0])] * 8, k=3)
        eight = baseline.last_profile.query_total()
        assert eight == pytest.approx(4 * two, rel=0.05)

    def test_query_before_fit(self):
        with pytest.raises(QueryError):
            CpuIdx().query([Query.from_keywords([0])], k=1)


class TestCpuLsh:
    def test_finds_exact_duplicate(self):
        points = np.random.default_rng(0).standard_normal((80, 8))
        baseline = CpuLsh(num_functions=32, width=4.0).fit(points)
        result = baseline.query(points[9][None, :], k=1)[0]
        assert int(result.ids[0]) == 9

    def test_results_sorted_by_distance(self):
        points = np.random.default_rng(1).standard_normal((80, 8)) * 2
        baseline = CpuLsh(num_functions=32, width=8.0).fit(points)
        qp = points[0]
        result = baseline.query(qp[None, :], k=5)[0]
        d = np.linalg.norm(points[result.ids] - qp[None, :], axis=1)
        assert (np.diff(d) >= -1e-12).all()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            CpuLsh(num_functions=4, width=4.0, collision_fraction=0.0)

    def test_query_before_fit(self):
        with pytest.raises(QueryError):
            CpuLsh(num_functions=4, width=4.0).query(np.zeros((1, 4)), k=1)


class TestAppGram:
    TITLES = [
        "approximate string matching",
        "exact string matching",
        "graph pattern mining",
        "parallel query processing",
    ]

    def test_exact_knn(self):
        baseline = AppGram(n=3).fit(self.TITLES)
        query = "exact string matchin"
        matches = baseline.search(query, k=2)
        true = sorted(range(len(self.TITLES)), key=lambda i: (edit_distance(query, self.TITLES[i]), i))
        assert [m.sequence_id for m in matches] == true[:2]
        assert matches[0].distance == edit_distance(query, self.TITLES[true[0]])

    def test_batch_profiles(self):
        baseline = AppGram(n=3).fit(self.TITLES)
        baseline.search_batch(["graph patern mining"], k=1)
        assert baseline.last_profile.query_total() > 0

    def test_exactness_on_random_queries(self):
        rng = np.random.default_rng(5)
        titles = ["".join("abc"[int(c)] for c in rng.integers(0, 3, size=10)) for _ in range(20)]
        baseline = AppGram(n=2).fit(titles)
        for _ in range(5):
            query = "".join("abc"[int(c)] for c in rng.integers(0, 3, size=9))
            best = baseline.search(query, k=1)[0]
            assert best.distance == min(edit_distance(query, t) for t in titles)

    def test_query_before_fit(self):
        with pytest.raises(QueryError):
            AppGram().search("abc")


class TestGenSpqFactory:
    def test_configured_without_cpq(self):
        engine = make_gen_spq()
        assert not engine.config.use_cpq

    def test_results_agree_with_genie(self):
        query = Query.from_keywords([0, 7])
        genie = GenieEngine(config=GenieConfig(k=4)).fit(CORPUS)
        gen_spq = make_gen_spq(config=GenieConfig(k=4)).fit(CORPUS)
        a = genie.query([query])[0]
        b = gen_spq.query([query])[0]
        assert sorted(a.counts.tolist()) == sorted(b.counts.tolist())
