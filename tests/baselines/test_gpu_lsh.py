"""Tests for the bi-level GPU-LSH baseline."""

import numpy as np
import pytest

from repro.baselines.gpu_lsh import GpuLsh
from repro.errors import ConfigError, QueryError
from repro.gpu.device import Device


def _points(n=100, dim=8, seed=0):
    return np.random.default_rng(seed).standard_normal((n, dim)) * 3


class TestSearch:
    def test_finds_exact_duplicate(self):
        points = _points()
        baseline = GpuLsh(num_tables=10, functions_per_table=4, width=8.0, device=Device()).fit(points)
        result = baseline.query(points[5][None, :], k=1)[0]
        assert int(result.ids[0]) == 5

    def test_results_sorted_by_true_distance(self):
        points = _points()
        baseline = GpuLsh(
            num_tables=20, functions_per_table=2, width=16.0, device=Device(), early_stop_factor=None
        ).fit(points)
        qp = points[0] + 0.01
        result = baseline.query(qp[None, :], k=5)[0]
        d = np.linalg.norm(points[result.ids] - qp[None, :], axis=1)
        assert (np.diff(d) >= -1e-12).all()

    def test_counts_are_table_hits(self):
        points = _points()
        baseline = GpuLsh(
            num_tables=10, functions_per_table=4, width=8.0, device=Device(), early_stop_factor=None
        ).fit(points)
        result = baseline.query(points[3][None, :], k=1)[0]
        # The duplicate collides in every table.
        assert int(result.counts[0]) == 10


class TestEarlyStop:
    def test_early_stop_limits_candidates(self):
        points = _points(n=500)
        eager = GpuLsh(
            num_tables=30, functions_per_table=2, width=24.0, device=Device(), early_stop_factor=None
        ).fit(points)
        lazy = GpuLsh(
            num_tables=30, functions_per_table=2, width=24.0, device=Device(), early_stop_factor=2
        ).fit(points)
        q = points[0]
        assert lazy.candidates_for(q, k=1).size <= eager.candidates_for(q, k=1).size


class TestResourceLimits:
    def test_constant_memory_limits_functions(self):
        with pytest.raises(ConfigError):
            GpuLsh(num_tables=2, functions_per_table=64, width=4.0, device=Device()).fit(
                _points(dim=1156)
            )

    def test_tables_consume_device_memory(self):
        device = Device()
        free_before = device.memory.free
        GpuLsh(num_tables=10, functions_per_table=2, width=8.0, device=device).fit(_points(n=1000))
        assert device.memory.free < free_before


class TestTimingShape:
    def test_flat_in_query_count_until_saturation(self):
        points = _points(n=300)
        baseline = GpuLsh(
            num_tables=10, functions_per_table=2, width=16.0, device=Device(), early_stop_factor=None
        ).fit(points)
        qp = np.tile(points[:10], (2, 1))
        baseline.query(qp[:8], k=3)
        small = baseline.last_profile.query_total()
        baseline.query(qp, k=3)
        large = baseline.last_profile.query_total()
        # 8 -> 20 queries still fits one warp wave: near-constant time.
        assert large < small * 2.5

    def test_errors(self):
        with pytest.raises(QueryError):
            GpuLsh(num_tables=2, functions_per_table=2, width=4.0).query(_points(n=1), k=1)
        with pytest.raises(ConfigError):
            GpuLsh(num_tables=0, functions_per_table=2, width=4.0)
