"""Tests for the GPU-SPQ full-scan baseline."""

import numpy as np
import pytest

from repro.baselines.gpu_spq import GpuSpq
from repro.core.match_count import brute_force_topk
from repro.core.types import Corpus, Query
from repro.errors import GpuOutOfMemoryError, QueryError
from repro.gpu.device import Device
from repro.gpu.specs import small_device

CORPUS = Corpus([[i % 7, 7 + (i * 3) % 5] for i in range(40)])


class TestCorrectness:
    def test_matches_brute_force(self):
        baseline = GpuSpq(device=Device()).fit(CORPUS)
        query = Query.from_keywords([0, 7, 9])
        result = baseline.query([query], k=5)[0]
        expected = [(i, c) for i, c in brute_force_topk(query, CORPUS, 5) if c > 0]
        assert result.as_pairs() == expected

    def test_multiple_queries(self):
        baseline = GpuSpq(device=Device()).fit(CORPUS)
        queries = [Query.from_keywords([0]), Query.from_keywords([8])]
        results = baseline.query(queries, k=3)
        assert len(results) == 2
        assert all(len(r) > 0 for r in results)


class TestCostProfile:
    def test_scan_charges_grow_with_queries(self):
        baseline = GpuSpq(device=Device()).fit(CORPUS)
        baseline.query([Query.from_keywords([0])] * 2, k=3)
        two = baseline.last_profile.query_total()
        baseline.query([Query.from_keywords([0])] * 8, k=3)
        eight = baseline.last_profile.query_total()
        assert eight > two

    def test_batch_state_released(self):
        device = Device()
        baseline = GpuSpq(device=device).fit(CORPUS)
        used = device.memory.used
        baseline.query([Query.from_keywords([0])], k=3)
        assert device.memory.used == used


class TestLimits:
    def test_oom_on_large_batch_small_device(self):
        corpus = Corpus([[i % 10] for i in range(2000)])
        baseline = GpuSpq(device=Device(small_device(100_000))).fit(corpus)
        with pytest.raises(GpuOutOfMemoryError):
            baseline.query([Query.from_keywords([0])] * 16, k=3)

    def test_errors(self):
        with pytest.raises(QueryError):
            GpuSpq().query([Query.from_keywords([0])], k=1)
        baseline = GpuSpq(device=Device()).fit(CORPUS)
        with pytest.raises(QueryError):
            baseline.query([], k=1)
