"""Online insert/delete/update on a live IndexHandle.

Covers the mutation surface's visibility guarantees (a mutation is
searchable immediately), its validation errors, how the plan tree grows
a ``DeltaScan`` node, and how the epochs and invalidation hooks scope:
a mutation stales exactly one index's caches, without touching other
indexes or bumping the fit epoch.
"""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.errors import ConfigError, QueryError
from repro.plan.nodes import DeltaScanNode, MergeNode, ScanNode
from repro.stream import StreamConfig

OBJECTS = [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 6]]

NO_COMPACT = StreamConfig(auto_compact=False)


def make(session, **kwargs):
    kwargs.setdefault("stream_config", NO_COMPACT)
    return session.create_index(OBJECTS, model="raw", name="x", **kwargs)


class TestInsert:
    def test_inserts_are_searchable_immediately(self):
        session = GenieSession()
        handle = make(session)
        gids = handle.insert([[99], [99, 0]])
        assert np.array_equal(gids, [6, 7])
        result = handle.search([[99]], k=3)
        # Equal counts tie-break id-ascending, same as a refit would.
        assert np.array_equal(result.results[0].ids, [6, 7])
        assert np.array_equal(result.results[0].counts, [1, 1])
        session.close()

    def test_fit_required_before_mutating(self):
        session = GenieSession()
        handle = session.declare_index("raw", name="x")
        with pytest.raises(QueryError, match="fitted"):
            handle.insert([[1]])
        session.close()

    def test_empty_batch_rejected(self):
        session = GenieSession()
        handle = make(session)
        with pytest.raises(QueryError, match="empty insert"):
            handle.insert([])
        session.close()

    def test_segments_seal_and_rotate(self):
        session = GenieSession()
        handle = make(session, stream_config=StreamConfig(
            seal_objects=2, auto_compact=False))
        handle.insert([[1], [2], [3], [4], [5]])
        manifest = handle.manifest
        assert len(manifest.segments) == 3
        assert [len(s) for s in manifest.segments] == [2, 2, 1]
        assert [s.sealed for s in manifest.segments] == [True, True, False]
        session.close()

    def test_stateful_model_refuses_online_ingest(self):
        session = GenieSession()
        handle = session.create_index(
            ["gpu index search", "exact match counting"],
            model="document", name="docs", stream_config=NO_COMPACT,
        )
        with pytest.raises(ConfigError, match="does not support online ingest"):
            handle.insert(["new document"])
        session.close()


class TestDelete:
    def test_deleted_base_object_stops_matching(self):
        session = GenieSession()
        handle = make(session)
        before = handle.search([[1]], k=3).results[0]
        assert np.array_equal(before.ids, [0, 1])
        handle.delete([0])
        after = handle.search([[1]], k=3).results[0]
        assert np.array_equal(after.ids, [1])
        session.close()

    def test_deleted_delta_insert_is_removed_in_place(self):
        session = GenieSession()
        handle = make(session)
        (gid,) = handle.insert([[42]])
        handle.delete([gid])
        manifest = handle.manifest
        assert manifest.delta_objects == 0
        assert not manifest.tombstones  # segment edit, not a tombstone
        assert handle.search([[42]], k=2).results[0].ids.size == 0
        session.close()

    def test_delete_validates_all_or_nothing(self):
        session = GenieSession()
        handle = make(session)
        epoch = handle.mutation_epoch
        with pytest.raises(QueryError, match="not a live object"):
            handle.delete([0, 17])
        with pytest.raises(QueryError, match="duplicate"):
            handle.delete([0, 0])
        assert handle.mutation_epoch == epoch  # nothing applied
        assert handle.search([[1]], k=3).results[0].ids.size == 2
        session.close()

    def test_double_delete_rejected(self):
        session = GenieSession()
        handle = make(session)
        handle.delete([0])
        with pytest.raises(QueryError, match="not a live object"):
            handle.delete([0])
        session.close()


class TestUpdate:
    def test_base_update_keeps_the_id(self):
        session = GenieSession()
        handle = make(session)
        handle.update(0, [50, 51])
        moved = handle.search([[50]], k=2).results[0]
        assert np.array_equal(moved.ids, [0])
        old = handle.search([[0]], k=2).results[0]
        assert old.ids.size == 0  # old keywords gone
        session.close()

    def test_delta_update_edits_in_place(self):
        session = GenieSession()
        handle = make(session)
        (gid,) = handle.insert([[60]])
        handle.update(gid, [61])
        manifest = handle.manifest
        assert not manifest.tombstones
        assert manifest.delta_objects == 1
        assert np.array_equal(handle.search([[61]], k=2).results[0].ids, [gid])
        session.close()

    def test_update_requires_a_live_object(self):
        session = GenieSession()
        handle = make(session)
        with pytest.raises(QueryError, match="not a live object"):
            handle.update(17, [1])
        session.close()


class TestPlans:
    def test_dirty_plan_grows_a_delta_scan(self):
        session = GenieSession()
        handle = make(session)
        clean = handle.explain([[1]], k=2)
        assert clean.find(DeltaScanNode) is None
        handle.insert([[1, 2], [3]])
        handle.delete([0])
        dirty = handle.explain([[1]], k=2)
        node = dirty.find(DeltaScanNode)
        assert node is not None
        assert node.segments == 1 and node.n_objects == 2
        assert node.postings == 3 and node.tombstones == 1
        assert isinstance(dirty, MergeNode) and dirty.strategy == "one-round"
        assert dirty.find(ScanNode) is not None
        rendered = dirty.render()
        assert "DeltaScan(index='x', segments=1" in rendered
        session.close()

    def test_sharded_dirty_plan_disables_two_round(self):
        session = GenieSession()
        handle = session.create_index(
            [[i, i + 1] for i in range(40)], model="raw", name="s",
            shards=4, stream_config=NO_COMPACT,
        )
        handle.insert([[0, 41]])
        plan = handle.explain([[0], [5]], k=4, plan="two-round")
        merge = plan.find(MergeNode)
        assert merge.strategy == "one-round"  # TPUT needs a clean base
        assert plan.find(DeltaScanNode) is not None
        session.close()

    def test_results_report_tombstone_filter_stage(self):
        session = GenieSession()
        handle = make(session)
        handle.delete([0])
        result = handle.search([[1]], k=2)
        assert result.profile.get("tombstone_filter") > 0.0
        session.close()


class TestEpochsAndInvalidation:
    def test_mutation_epoch_separate_from_fit_epoch(self):
        session = GenieSession()
        handle = make(session)
        fit_epoch = handle.fit_epoch
        handle.insert([[9]])
        handle.delete([0])
        assert handle.mutation_epoch == 2
        assert handle.fit_epoch == fit_epoch
        session.close()

    def test_mutation_invalidates_only_this_index(self):
        session = GenieSession()
        handle = make(session)
        session.create_index([[7]], model="raw", name="other",
                             stream_config=NO_COMPACT)
        stale: list[str] = []
        session.add_invalidation_hook(stale.append)
        handle.insert([[1]])
        assert stale == ["x"]  # "other" untouched
        session.close()

    def test_refit_abandons_live_mutations(self):
        session = GenieSession()
        handle = make(session)
        handle.insert([[70]])
        handle.fit([[0, 1], [1, 2]])
        assert handle.manifest is None
        assert handle.mutation_epoch == 0
        assert handle.search([[70]], k=2).results[0].ids.size == 0
        session.close()

    def test_mutated_index_evicts_delta_parts(self):
        session = GenieSession()
        handle = make(session)
        handle.insert([[80]])
        handle.search([[80]], k=2)  # materializes the delta part
        assert handle.device_bytes > 0
        handle.evict()
        assert all(not p.resident for p in handle._all_parts())
        session.close()
