"""Unit behavior of the stream primitives: segments, config, manifest."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.stream import DeltaSegment, SegmentManifest, StreamConfig


def kw(*keywords):
    return np.asarray(keywords, dtype=np.int64)


class TestStreamConfig:
    def test_defaults(self):
        config = StreamConfig()
        assert config.seal_objects == 512
        assert config.compact_ratio == 0.25
        assert config.auto_compact is True

    def test_validation(self):
        with pytest.raises(ConfigError, match="seal_objects"):
            StreamConfig(seal_objects=0)
        with pytest.raises(ConfigError, match="compact_ratio"):
            StreamConfig(compact_ratio=0.0)
        with pytest.raises(ConfigError, match="compact_ratio"):
            StreamConfig(compact_ratio=-1.0)


class TestDeltaSegment:
    def test_add_and_introspect(self):
        segment = DeltaSegment()
        segment.add(7, kw(1, 2, 3))
        segment.add(3, kw(4))
        assert len(segment) == 2
        assert segment.postings == 4
        assert segment.ids() == [3, 7]  # ascending gather-map order
        assert 7 in segment and 5 not in segment
        assert np.array_equal(segment.keywords(7), kw(1, 2, 3))

    def test_duplicate_add_rejected(self):
        segment = DeltaSegment()
        segment.add(1, kw(0))
        with pytest.raises(ConfigError, match="already holds"):
            segment.add(1, kw(9))

    def test_remove(self):
        segment = DeltaSegment()
        segment.add(1, kw(5, 6))
        assert segment.remove(1) is True
        assert segment.remove(1) is False
        assert len(segment) == 0 and segment.postings == 0

    def test_replace_adjusts_postings(self):
        segment = DeltaSegment()
        segment.add(1, kw(5, 6, 7))
        segment.replace(1, kw(8))
        assert segment.postings == 1
        assert np.array_equal(segment.keywords(1), kw(8))

    def test_every_edit_bumps_version(self):
        segment = DeltaSegment()
        versions = [segment.version]
        segment.add(1, kw(0))
        versions.append(segment.version)
        segment.replace(1, kw(1))
        versions.append(segment.version)
        segment.remove(1)
        versions.append(segment.version)
        assert versions == sorted(set(versions))  # strictly increasing


class TestSegmentManifest:
    def test_clean_at_birth(self):
        manifest = SegmentManifest(10)
        assert manifest.dirty is False
        assert manifest.next_gid == manifest.base_objects == 10
        assert manifest.delta_objects == manifest.delta_postings == 0

    def test_dirty_on_segments_or_tombstones(self):
        manifest = SegmentManifest(10)
        segment = DeltaSegment()
        segment.add(10, kw(1))
        manifest.segments.append(segment)
        assert manifest.dirty
        manifest.segments.clear()
        manifest.tombstones.add(3)
        assert manifest.dirty

    def test_dirty_on_dead_id_slots_past_the_base(self):
        # An inserted-then-deleted object leaves no segment or tombstone,
        # but its id slot still shifts the logical corpus size: a refit
        # would index the empty slot, so searches must stay on the
        # streamed path until compaction folds it in.
        manifest = SegmentManifest(10)
        manifest.next_gid = 12
        assert manifest.dirty

    def test_describe_is_deterministic(self):
        manifest = SegmentManifest(5)
        described = manifest.describe()
        assert described == {
            "base_objects": 5, "next_gid": 5, "segments": 0,
            "delta_objects": 0, "delta_postings": 0, "tombstones": 0,
            "mutation_epoch": 0, "base_epoch": 0, "compactions": 0,
        }
        assert "SegmentManifest(" in repr(manifest)
