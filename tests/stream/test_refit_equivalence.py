"""The streaming correctness property, exercised exhaustively.

Random interleavings of insert / delete / update / compact applied to a
live handle must answer every query **bit-identically** — ids, counts,
tie order, *and* thresholds — to a session that refits the final logical
corpus from scratch, across serial and sharded handles, both partition
strategies, and several ``k`` (including ``k`` larger than the corpus).

The reference corpus is maintained side by side as plain Python state:
one keyword-list slot per assigned global id, dead slots empty (a refit
indexes them as never-matching empty objects, keeping ids stable).
"""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.stream import StreamConfig


def random_corpus(rng, n_objects, vocab):
    return [
        rng.integers(0, vocab, size=int(rng.integers(1, 6))).tolist()
        for _ in range(n_objects)
    ]


def apply_random_ops(rng, handle, reference, vocab, n_ops):
    """Mutate ``handle`` and the plain-state ``reference`` in lockstep."""
    for _ in range(n_ops):
        live = [gid for gid, kws in enumerate(reference) if kws is not None]
        op = rng.choice(["insert", "delete", "update", "compact"],
                        p=[0.45, 0.2, 0.25, 0.1])
        if op == "insert" or not live:
            batch = random_corpus(rng, int(rng.integers(1, 4)), vocab)
            handle.insert(batch)
            reference.extend(batch)
        elif op == "delete":
            victims = rng.choice(live, size=min(2, len(live)), replace=False)
            handle.delete(victims)
            for gid in victims:
                reference[int(gid)] = None
        elif op == "update":
            gid = int(rng.choice(live))
            keywords = rng.integers(0, vocab, size=int(rng.integers(1, 6))).tolist()
            handle.update(gid, keywords)
            reference[gid] = keywords
        else:
            handle.compact()


def final_corpus(reference):
    return [kws if kws is not None else [] for kws in reference]


def assert_bit_identical(streamed, refit, context):
    assert len(streamed.results) == len(refit.results)
    for qi, (a, b) in enumerate(zip(streamed.results, refit.results)):
        note = f"{context} query={qi}"
        assert np.array_equal(a.ids, b.ids), f"{note}: ids {a.ids} != {b.ids}"
        assert np.array_equal(a.counts, b.counts), (
            f"{note}: counts {a.counts} != {b.counts}"
        )
        assert a.threshold == b.threshold, (
            f"{note}: threshold {a.threshold} != {b.threshold}"
        )


VOCAB = 30


def run_trial(seed, shards, strategy, auto_compact):
    rng = np.random.default_rng(seed)
    corpus = random_corpus(rng, 120, VOCAB)
    reference = [list(kws) for kws in corpus]
    stream_config = StreamConfig(
        seal_objects=8, compact_ratio=0.5, auto_compact=auto_compact
    )
    session = GenieSession()
    handle = session.create_index(
        corpus, model="raw", name="live", shards=shards,
        shard_strategy=strategy, stream_config=stream_config,
    )
    apply_random_ops(rng, handle, reference, VOCAB, n_ops=30)

    refit_session = GenieSession()
    refit_handle = refit_session.create_index(
        final_corpus(reference), model="raw", name="refit",
        shards=shards, shard_strategy=strategy,
    )
    queries = [
        rng.integers(0, VOCAB, size=int(rng.integers(1, 4))).tolist()
        for _ in range(6)
    ]
    for k in (1, 3, 10, 500):  # 500 > corpus: threshold rank must cap
        streamed = handle.search(queries, k=k)
        refit = refit_handle.search(queries, k=k)
        assert_bit_identical(
            streamed, refit,
            f"seed={seed} shards={shards} strategy={strategy} "
            f"auto={auto_compact} k={k}",
        )
    session.close()
    refit_session.close()


class TestStreamedEqualsRefit:
    @pytest.mark.parametrize("seed", range(4))
    def test_serial(self, seed):
        run_trial(seed, shards=None, strategy="range", auto_compact=False)

    @pytest.mark.parametrize("seed", range(2))
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_range_sharded(self, seed, shards):
        run_trial(seed + 10, shards=shards, strategy="range", auto_compact=False)

    @pytest.mark.parametrize("seed", range(2))
    @pytest.mark.parametrize("shards", [2, 3])
    def test_hash_sharded(self, seed, shards):
        run_trial(seed + 20, shards=shards, strategy="hash", auto_compact=False)

    @pytest.mark.parametrize("seed", range(2))
    def test_with_auto_compaction(self, seed):
        # Threshold-driven compactions interleave with the mutations and
        # must stay invisible to every answer.
        run_trial(seed + 30, shards=None, strategy="range", auto_compact=True)

    @pytest.mark.parametrize("shards", [None, 2])
    def test_with_plan_cache_and_cost_model(self, shards):
        # The cached / costed planning paths must not bend results either.
        rng = np.random.default_rng(99)
        corpus = random_corpus(rng, 100, VOCAB)
        reference = [list(kws) for kws in corpus]
        session = GenieSession()
        handle = session.create_index(
            corpus, model="raw", name="live", shards=shards,
            stream_config=StreamConfig(seal_objects=8, auto_compact=False),
        )
        session.cost_coefficients = {
            "scan.const": 1e-6, "scan.queries": 1e-7, "scan.keywords": 1e-7,
            "scan.postings": 1e-8, "scan.gated": 1e-9, "scan.hot": 1e-7,
            "scan.width": 1e-9, "merge.const": 1e-7, "merge.ops": 1e-9,
            "topup.const": 1e-7, "topup.concentration": 1e-7,
        }
        apply_random_ops(rng, handle, reference, VOCAB, n_ops=20)
        refit_session = GenieSession()
        refit_handle = refit_session.create_index(
            final_corpus(reference), model="raw", name="refit", shards=shards,
        )
        queries = [[1, 2], [7], [12, 25, 3]]
        for _ in range(2):  # second pass exercises plan-cache hits
            streamed = handle.search(queries, k=5)
            refit = refit_handle.search(queries, k=5)
            assert_bit_identical(streamed, refit, f"costed shards={shards}")
        session.close()
        refit_session.close()
