"""Compaction: threshold triggers, atomic swap, and cache scoping."""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.plan.nodes import DeltaScanNode
from repro.stream import StreamConfig

CORPUS = [[i % 7, (i + 1) % 7] for i in range(20)]

NO_COMPACT = StreamConfig(auto_compact=False)


def make(session, **kwargs):
    kwargs.setdefault("stream_config", NO_COMPACT)
    return session.create_index(CORPUS, model="raw", name="x", **kwargs)


class TestManualCompact:
    def test_compact_on_a_clean_index_is_a_no_op(self):
        session = GenieSession()
        handle = make(session)
        assert handle.compact() is False  # never mutated: no stream at all
        handle.insert([[50]])
        assert handle.compact() is True
        assert handle.compact() is False  # already clean
        session.close()

    def test_compact_folds_deltas_into_a_fresh_base(self):
        session = GenieSession()
        handle = make(session)
        handle.insert([[50], [51]])
        handle.delete([0, 3])
        handle.update(5, [52])
        before = handle.search([[50], [5], [52]], k=4)
        assert handle.compact() is True
        manifest = handle.manifest
        assert manifest.dirty is False
        assert manifest.base_objects == manifest.next_gid == 22
        assert manifest.delta_postings == 0 and not manifest.tombstones
        assert manifest.base_epoch == 1 and manifest.compactions == 1
        after = handle.search([[50], [5], [52]], k=4)
        for a, b in zip(before.results, after.results):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.counts, b.counts)
            assert a.threshold == b.threshold
        session.close()

    def test_compacted_plan_has_no_delta_scan(self):
        session = GenieSession()
        handle = make(session)
        handle.insert([[50]])
        assert handle.explain([[50]], k=2).find(DeltaScanNode) is not None
        handle.compact()
        assert handle.explain([[50]], k=2).find(DeltaScanNode) is None
        session.close()

    def test_compact_preserves_ids_of_dead_slots(self):
        # gid 20 is inserted then deleted pre-compaction; ids past it must
        # not shift down when the base is rewritten.
        session = GenieSession()
        handle = make(session)
        (dead,) = handle.insert([[60]])
        (alive,) = handle.insert([[61]])
        handle.delete([dead])
        handle.compact()
        assert np.array_equal(
            handle.search([[61]], k=2).results[0].ids, [alive]
        )
        assert handle.search([[60]], k=2).results[0].ids.size == 0
        session.close()

    def test_mutations_continue_after_compact(self):
        session = GenieSession()
        handle = make(session)
        handle.insert([[70]])
        handle.compact()
        gids = handle.insert([[71]])
        assert gids[0] == 21  # next_gid carried through the swap
        assert np.array_equal(
            handle.search([[71]], k=2).results[0].ids, gids
        )
        session.close()


class TestAutoCompact:
    def test_triggers_on_delta_posting_ratio(self):
        session = GenieSession()
        handle = make(session, stream_config=StreamConfig(compact_ratio=0.25))
        # Base holds 40 postings; ratio 0.25 -> compact once deltas > 10.
        handle.insert([[i] for i in range(11)])
        assert handle.manifest.compactions == 1
        assert handle.manifest.dirty is False
        session.close()

    def test_triggers_on_tombstone_ratio(self):
        session = GenieSession()
        handle = make(session, stream_config=StreamConfig(compact_ratio=0.25))
        # 20 base objects; ratio 0.25 -> compact once tombstones > 5.
        handle.delete([0, 1, 2, 3, 4])
        assert handle.manifest.compactions == 0
        handle.delete([5])
        assert handle.manifest.compactions == 1
        assert not handle.manifest.tombstones
        session.close()

    def test_stays_put_below_threshold(self):
        session = GenieSession()
        handle = make(session, stream_config=StreamConfig(compact_ratio=0.5))
        handle.insert([[90]])
        assert handle.manifest.compactions == 0
        assert handle.manifest.dirty
        session.close()


class TestCacheScoping:
    # The plan cache only serves sharded compiles, so these use shards.

    def test_compact_invalidates_plans_but_not_results(self):
        session = GenieSession()
        handle = make(session, shards=2)
        handle.insert([[50]])
        handle.search([[50]], k=2)  # caches the dirty plan
        assert session.plan_cache.stats()["plan_cache_size"] == 1
        stale: list[str] = []
        session.add_invalidation_hook(stale.append)
        handle.compact()
        # Results stay valid (compaction is answer-preserving), so no
        # invalidation fires; the plan cache entry is dropped because the
        # dirty plan's DeltaScan no longer applies.
        assert stale == []
        assert session.plan_cache.stats()["plan_cache_size"] == 0
        session.close()

    def test_plans_recompile_against_the_new_base(self):
        session = GenieSession()
        handle = make(session, shards=2)
        handle.insert([[50]])
        handle.search([[50]], k=2)
        misses = session.plan_cache.stats()["misses"]
        handle.compact()
        handle.search([[50]], k=2)
        stats = session.plan_cache.stats()
        assert stats["misses"] == misses + 1  # epoch-keyed: no false hit
        session.close()

    def test_sharded_compact_rebuilds_every_shard(self):
        session = GenieSession()
        handle = session.create_index(
            [[i, i + 1] for i in range(40)], model="raw", name="s",
            shards=4, stream_config=NO_COMPACT,
        )
        handle.insert([[0, 100]])
        handle.delete([0])
        handle.compact()
        assert handle.manifest.dirty is False
        result = handle.search([[0], [100]], k=3)
        assert np.array_equal(result.results[0].ids, [40])
        assert np.array_equal(result.results[1].ids, [40])
        session.close()


class TestResidency:
    def test_compact_respects_the_residency_budget(self):
        session = GenieSession()
        handle = make(session)
        handle.insert([[95]])
        handle.compact()
        assert handle.device_bytes <= session.memory_budget
        result = handle.search([[95]], k=2)
        assert result.results[0].ids.size == 1
        session.close()
