"""Serving a mutating index: scoped cache invalidation + stream gauges."""

import numpy as np

from repro.api import GenieSession
from repro.serve import BatchPolicy, GenieServer
from repro.stream import StreamConfig

CORPUS_A = [[0, 1], [1, 2], [2, 3], [3, 4]]
CORPUS_B = [[10, 11], [11, 12], [12, 13]]

NO_COMPACT = StreamConfig(auto_compact=False)


def make_server():
    session = GenieSession()
    session.create_index(CORPUS_A, model="raw", name="a",
                         stream_config=NO_COMPACT)
    session.create_index(CORPUS_B, model="raw", name="b",
                         stream_config=NO_COMPACT)
    # FIFO dispatches each submit immediately, so every request's batch
    # (and its manifest gauge sample) lands before the next assertion.
    return GenieServer(session, policy=BatchPolicy.fifo())


class TestCacheInvalidation:
    def test_insert_drops_only_the_mutated_indexes_entries(self):
        server = make_server()
        server.submit("a", (1,), k=2)
        server.submit("b", (11,), k=2)
        assert server.metrics.cache_misses == 2
        server.session.index("a").insert([[1, 50]])
        # "a" re-executes (a stale hit would miss the new object);
        # "b" still answers from cache.
        fresh = server.submit("a", (1,), k=4)
        assert not fresh.metadata.cache_hit
        assert np.array_equal(fresh.result().ids, [0, 1, 4])
        warm = server.submit("b", (11,), k=2)
        assert warm.metadata.cache_hit
        server.close()

    def test_compaction_preserves_cached_answers(self):
        server = make_server()
        handle = server.session.index("a")
        handle.insert([[60]])
        first = server.submit("a", (60,), k=2)
        handle.compact()
        warm = server.submit("a", (60,), k=2)
        assert warm.metadata.cache_hit  # compaction changed no answer
        assert np.array_equal(warm.result().ids, first.result().ids)
        server.close()


class TestStreamGauges:
    def test_snapshot_reports_delta_postings_and_compactions(self):
        server = make_server()
        handle = server.session.index("a")
        handle.insert([[70, 71], [72]])
        server.submit("a", (70,), k=2)  # dispatch samples the manifest
        snapshot = server.metrics.snapshot()
        assert snapshot["delta_postings"] == 3
        assert snapshot["compactions"] == 0
        handle.compact()
        server.submit("a", (72,), k=2)
        snapshot = server.metrics.snapshot()
        assert snapshot["delta_postings"] == 0
        assert snapshot["compactions"] == 1
        server.close()

    def test_gauges_sum_across_mutated_indexes(self):
        server = make_server()
        server.session.index("a").insert([[70]])
        server.session.index("b").insert([[80, 81]])
        server.submit("a", (70,), k=2)
        server.submit("b", (80,), k=2)
        assert server.metrics.snapshot()["delta_postings"] == 3
        server.close()

    def test_snapshot_reports_plan_cache_size(self):
        server = make_server()
        snapshot = server.metrics.snapshot()
        assert snapshot["plan_cache_size"] == 0
        server.close()
