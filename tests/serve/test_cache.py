"""Tests for the exact-match query-result cache and its invalidation."""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.errors import ConfigError
from repro.serve import BatchPolicy, GenieServer, QueryResultCache, make_cache_key


def _docs(n=30):
    words = ["gpu", "index", "search", "fast", "cat", "dog", "tree", "blue"]
    rng = np.random.default_rng(0)
    return [" ".join(rng.choice(words, size=4, replace=False)) for _ in range(n)]


DOCS = _docs()


def make_server(cache_size=64, policy=None):
    session = GenieSession()
    session.create_index(DOCS, model="document", name="tweets")
    return GenieServer(session, policy=policy or BatchPolicy.fifo(), cache_size=cache_size)


class TestLruMechanics:
    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError, match="capacity"):
            QueryResultCache(0)

    def test_hit_and_miss_counters(self):
        cache = QueryResultCache(4)
        cache.put(("i", (), 1, ()), "v")
        assert cache.get(("i", (), 1, ())) == "v"
        assert cache.get(("i", (), 2, ())) is None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_beyond_capacity(self):
        cache = QueryResultCache(2)
        cache.put(("i", (), 1, ()), "a")
        cache.put(("i", (), 2, ()), "b")
        cache.put(("i", (), 3, ()), "c")  # evicts key 1 (LRU)
        assert ("i", (), 1, ()) not in cache
        assert ("i", (), 2, ()) in cache
        assert cache.stats()["evictions"] == 1

    def test_get_bumps_to_mru(self):
        cache = QueryResultCache(2)
        cache.put(("i", (), 1, ()), "a")
        cache.put(("i", (), 2, ()), "b")
        cache.get(("i", (), 1, ()))  # 1 becomes MRU
        cache.put(("i", (), 3, ()), "c")  # evicts 2, not 1
        assert ("i", (), 1, ()) in cache
        assert ("i", (), 2, ()) not in cache

    def test_invalidate_removes_only_that_index(self):
        cache = QueryResultCache(8)
        cache.put(("a", (), 1, ()), "x")
        cache.put(("a", (), 2, ()), "y")
        cache.put(("b", (), 1, ()), "z")
        assert cache.invalidate("a") == 2
        assert len(cache) == 1
        assert ("b", (), 1, ()) in cache
        assert cache.stats()["invalidations"] == 2


class TestServerIntegration:
    def test_repeat_query_is_answered_from_cache(self):
        server = make_server()
        first = server.submit("tweets", DOCS[0], k=3)
        batches_before = server.snapshot()["batches"]
        second = server.submit("tweets", DOCS[0], k=3)
        assert second.done()
        assert second.metadata.cache_hit
        assert second.metadata.batch_size == 0  # no device trip
        assert server.snapshot()["batches"] == batches_before
        assert np.array_equal(first.result().ids, second.result().ids)
        assert np.array_equal(first.result().counts, second.result().counts)
        assert server.snapshot()["cache"]["hits"] == 1

    def test_exact_match_is_exact(self):
        server = make_server()
        server.submit("tweets", DOCS[0], k=3)
        different_k = server.submit("tweets", DOCS[0], k=4)
        assert not different_k.metadata.cache_hit

    def test_refit_invalidates_served_results(self):
        server = make_server()
        query = DOCS[0]
        server.submit("tweets", query, k=3)
        handle = server.session.index("tweets")
        handle.fit(list(reversed(DOCS)))  # same vocabulary, new ids
        after = server.submit("tweets", query, k=3)
        assert not after.metadata.cache_hit
        direct = handle.search([query], k=3)
        assert np.array_equal(after.result().ids, direct[0].ids)

    def test_drop_invalidates(self):
        server = make_server()
        server.submit("tweets", DOCS[0], k=3)
        assert server.snapshot()["cache"]["entries"] == 1
        server.session.drop("tweets")
        assert server.snapshot()["cache"]["entries"] == 0
        assert server.snapshot()["cache"]["invalidations"] == 1

    def test_cache_hit_served_even_when_queue_full(self):
        session = GenieSession()
        session.create_index(DOCS, model="document", name="tweets")
        server = GenieServer(
            session, policy=BatchPolicy.micro(max_batch=64, max_wait=100.0),
            max_queue_depth=1, cache_size=8,
        )
        hit_source = server.submit("tweets", DOCS[0], k=3)
        server.drain()  # cached now
        server.submit("tweets", DOCS[1], k=3)  # fills the queue
        hit = server.submit("tweets", DOCS[0], k=3)  # still served
        assert hit.metadata.cache_hit
        assert np.array_equal(hit.result().ids, hit_source.result().ids)

    def test_raw_dependent_payloads_never_conflated(self):
        # Two raw sequence queries can share an encoding (unseen n-grams
        # are dropped); their edit-distance payloads differ, so the cache
        # must key on the raw query for finalize_uses_raw models.
        session = GenieSession()
        session.create_index(["abcdefgh"], model="sequence", n=3, name="seqs")
        server = GenieServer(session, policy=BatchPolicy.fifo(), cache_size=64)
        far = server.submit("seqs", "abcdefghZZZZZZ", k=1, n_candidates=4)
        near = server.submit("seqs", "abcdefghQQ", k=1, n_candidates=4)
        assert not near.metadata.cache_hit
        assert far.payload.best.distance == 6
        assert near.payload.best.distance == 2
        # An exact raw repeat still hits.
        repeat = server.submit("seqs", "abcdefghQQ", k=1, n_candidates=4)
        assert repeat.metadata.cache_hit
        assert repeat.payload.best.distance == 2

    def test_session_close_refuses_submit_even_on_cached_query(self):
        server = make_server()
        server.submit("tweets", DOCS[0], k=3)
        server.session.close()
        with pytest.raises(ConfigError, match="session is closed"):
            server.submit("tweets", DOCS[0], k=3)

    def test_disabled_cache_reports_none(self):
        session = GenieSession()
        session.create_index(DOCS, model="document", name="tweets")
        server = GenieServer(session, policy=BatchPolicy.fifo(), cache_size=None)
        server.submit("tweets", DOCS[0], k=3)
        assert server.snapshot()["cache"] is None


class TestKeying:
    def test_key_covers_index_query_k_and_opts(self):
        session = GenieSession()
        handle = session.create_index(DOCS, model="document", name="tweets")
        (query,) = handle.encode_queries([DOCS[0]])
        base = make_cache_key("tweets", query, 3, ())
        assert base == make_cache_key("tweets", query, 3, ())
        assert base != make_cache_key("other", query, 3, ())
        assert base != make_cache_key("tweets", query, 4, ())
        assert base != make_cache_key("tweets", query, 3, (("n_candidates", 8),))
