"""Tests for the seeded traffic generator and both serving loops."""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.errors import ConfigError
from repro.serve import (
    BatchPolicy,
    GenieServer,
    TrafficSource,
    run_closed_loop,
    run_open_loop,
    sample_trace,
)


def _docs(n=40):
    words = ["gpu", "index", "search", "fast", "cat", "dog", "tree", "blue",
             "red", "green", "warp", "batch", "queue", "cache", "merge", "scan"]
    rng = np.random.default_rng(0)
    return [" ".join(rng.choice(words, size=4, replace=False)) for _ in range(n)]


DOCS = _docs()
POINTS = np.random.default_rng(3).standard_normal((60, 8))


def make_session():
    session = GenieSession()
    session.create_index(DOCS, model="document", name="tweets")
    session.create_index(
        POINTS, model="ann-e2lsh", num_functions=8, dim=8, width=4.0, domain=67,
        seed=4, name="points",
    )
    return session


def make_sources():
    return [
        TrafficSource("tweets", lambda rng: DOCS[int(rng.integers(len(DOCS)))],
                      weight=0.7, k=3),
        TrafficSource("points", lambda rng: rng.standard_normal(8), weight=0.3, k=3),
    ]


class TestTrace:
    def test_same_seed_same_trace(self):
        sources = make_sources()
        a = sample_trace(sources, 50, rate=1e5, seed=11)
        b = sample_trace(sources, 50, rate=1e5, seed=11)
        assert [x.time for x in a] == [x.time for x in b]
        assert [x.index for x in a] == [x.index for x in b]
        for x, y in zip(a, b):
            if isinstance(x.raw_query, np.ndarray):
                assert np.array_equal(x.raw_query, y.raw_query)
            else:
                assert x.raw_query == y.raw_query

    def test_different_seed_differs(self):
        sources = make_sources()
        a = sample_trace(sources, 50, rate=1e5, seed=11)
        b = sample_trace(sources, 50, rate=1e5, seed=12)
        assert [x.time for x in a] != [x.time for x in b]

    def test_arrivals_are_increasing(self):
        times = [x.time for x in sample_trace(make_sources(), 50, rate=1e5, seed=1)]
        assert times == sorted(times)
        assert times[0] > 0

    def test_mix_respects_weights(self):
        sources = [
            TrafficSource("tweets", lambda rng: DOCS[0], weight=1.0),
            TrafficSource("points", lambda rng: rng.standard_normal(8), weight=0.0),
        ]
        trace = sample_trace(sources, 40, rate=1e5, seed=5)
        assert {x.index for x in trace} == {"tweets"}

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigError, match="rate"):
            sample_trace(make_sources(), 10, rate=0.0)
        with pytest.raises(ConfigError, match="source"):
            sample_trace([], 10, rate=1.0)
        bad = [TrafficSource("tweets", lambda rng: DOCS[0], weight=-1.0)]
        with pytest.raises(ConfigError, match="weights"):
            sample_trace(bad, 10, rate=1.0)


class TestOpenLoop:
    def test_completes_all_admitted(self):
        server = GenieServer(make_session(), policy=BatchPolicy.micro(8, 1e-5),
                             cache_size=None, max_queue_depth=1000)
        trace = sample_trace(make_sources(), 60, rate=1e6, seed=2)
        served, rejected = run_open_loop(server, trace)
        assert rejected == 0
        assert len(served) == 60
        assert all(future.done() for _, future in served)

    def test_backpressure_counts_rejections(self):
        server = GenieServer(make_session(), policy=BatchPolicy.micro(64, 1.0),
                             cache_size=None, max_queue_depth=4)
        trace = sample_trace(make_sources(), 40, rate=1e8, seed=2)
        served, rejected = run_open_loop(server, trace)
        assert rejected > 0
        assert len(served) + rejected == 40
        assert server.snapshot()["rejected"] == rejected
        assert all(future.done() for _, future in served)

    def test_served_results_match_direct_search(self):
        session = make_session()
        server = GenieServer(session, policy=BatchPolicy.micro(8, 1e-5), cache_size=None)
        trace = sample_trace(make_sources(), 30, rate=1e6, seed=8)
        served, _ = run_open_loop(server, trace)
        for arrival, future in served:
            direct = session.index(arrival.index).search([arrival.raw_query], k=arrival.k)
            assert np.array_equal(future.result().ids, direct[0].ids)
            assert np.array_equal(future.result().counts, direct[0].counts)


class TestClosedLoop:
    def test_every_client_request_served(self):
        server = GenieServer(make_session(), policy=BatchPolicy.micro(4, 1e-5),
                             cache_size=None)
        served = run_closed_loop(server, make_sources(), n_clients=6,
                                 requests_per_client=5, seed=3)
        assert len(served) == 30
        assert all(future.done() for _, future in served)

    def test_bad_parameters_rejected(self):
        server = GenieServer(make_session(), cache_size=None)
        with pytest.raises(ConfigError):
            run_closed_loop(server, make_sources(), n_clients=0, requests_per_client=1)
        with pytest.raises(ConfigError):
            run_closed_loop(server, make_sources(), n_clients=1, requests_per_client=1,
                            think_time=-1.0)


class TestDeterminism:
    """Acceptance: repeated seeded runs produce identical percentiles."""

    @pytest.mark.parametrize("policy_name", ["fifo", "micro"])
    def test_open_loop_snapshot_bit_identical(self, policy_name):
        def run():
            policy = (BatchPolicy.fifo() if policy_name == "fifo"
                      else BatchPolicy.micro(max_batch=8, max_wait=2e-6))
            server = GenieServer(make_session(), policy=policy,
                                 cache_size=32, max_queue_depth=1000)
            trace = sample_trace(make_sources(), 80, rate=2e6, seed=21)
            run_open_loop(server, trace)
            return server.snapshot()

        first, second = run(), run()
        assert first == second
        assert first["latency_p50"] > 0

    def test_closed_loop_snapshot_bit_identical(self):
        def run():
            server = GenieServer(make_session(),
                                 policy=BatchPolicy.micro(max_batch=4, max_wait=2e-6),
                                 cache_size=32)
            run_closed_loop(server, make_sources(), n_clients=8,
                            requests_per_client=6, think_time=1e-6, seed=5)
            return server.snapshot()

        assert run() == run()
