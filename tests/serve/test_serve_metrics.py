"""Tests for ServeMetrics: percentile bounds, zero-window throughput, shards."""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.errors import AdmissionError, ConfigError, QueryError
from repro.serve import BatchPolicy, GenieServer, ServeMetrics, percentile_nearest_rank


def _docs(n=40):
    words = ["gpu", "index", "search", "fast", "cat", "dog", "tree", "blue",
             "red", "green", "warp", "batch", "queue", "cache", "merge", "scan"]
    rng = np.random.default_rng(0)
    return [" ".join(rng.choice(words, size=4, replace=False)) for _ in range(n)]


DOCS = _docs()


def make_server(policy=None, **kwargs):
    session = GenieSession()
    session.create_index(DOCS, model="document", name="tweets")
    kwargs.setdefault("cache_size", None)
    return GenieServer(session, policy=policy, **kwargs)


class TestPercentileNearestRank:
    def test_nearest_rank_values(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile_nearest_rank(values, 25.0) == 1.0
        assert percentile_nearest_rank(values, 50.0) == 2.0
        assert percentile_nearest_rank(values, 75.0) == 3.0
        assert percentile_nearest_rank(values, 100.0) == 4.0

    def test_tiny_p_is_the_minimum_not_an_underflow(self):
        assert percentile_nearest_rank([5.0, 7.0, 9.0], 1e-9) == 5.0

    def test_empty_population_is_zero(self):
        assert percentile_nearest_rank([], 50.0) == 0.0

    @pytest.mark.parametrize("p", [0.0, -1.0, -50.0, 100.0001, 200.0])
    def test_out_of_range_p_rejected(self, p):
        # p <= 0 used to be masked by a rank clamp (silently returning the
        # minimum) and p > 100 indexed past the population.
        with pytest.raises(ConfigError, match="percentile must be in"):
            percentile_nearest_rank([1.0, 2.0, 3.0], p)

    def test_out_of_range_p_rejected_even_for_empty_population(self):
        with pytest.raises(ConfigError, match="percentile must be in"):
            percentile_nearest_rank([], 200.0)


class TestZeroLengthWindow:
    def test_single_instant_completion_reports_zero_throughput(self):
        # One request admitted and completed at the same simulated instant:
        # the first_arrival -> last_completion window has zero length, and
        # the snapshot must report 0.0, not raise or return inf.
        metrics = ServeMetrics()
        metrics.record_arrival(5.0)
        metrics.record_completion(0.0, 0.0, 5.0)
        snap = metrics.snapshot()
        assert snap["completed"] == 1
        assert snap["throughput_qps"] == 0.0
        assert snap["elapsed_seconds"] == 0.0

    def test_empty_metrics_snapshot_is_all_zero(self):
        snap = ServeMetrics().snapshot()
        assert snap["throughput_qps"] == 0.0
        assert snap["latency_p50"] == 0.0

    def test_all_cache_hit_run_reports_zero_throughput(self):
        # Prime the cache, then reset the metrics so the only recorded
        # traffic is a cache hit answered at one instant.
        server = make_server(BatchPolicy.fifo(), cache_size=16)
        server.submit("tweets", DOCS[0], k=3)
        server.drain()
        server.metrics = ServeMetrics()
        future = server.submit("tweets", DOCS[0], k=3)
        assert future.metadata.cache_hit
        snap = server.snapshot()
        assert snap["completed"] == 1
        assert snap["throughput_qps"] == 0.0


class TestShardCounters:
    def test_shard_busy_accumulates_and_imbalance(self):
        metrics = ServeMetrics()
        metrics.record_batch(4, 3.0, 0, 0, shard_seconds=[3.0, 1.0])
        metrics.record_batch(4, 3.0, 0, 0, shard_seconds=[3.0, 1.0])
        assert metrics.shard_busy_seconds == {0: 6.0, 1: 2.0}
        assert metrics.sharded_batches == 2
        # max busy 6.0 over mean 4.0
        assert metrics.shard_imbalance == pytest.approx(1.5)

    def test_unsharded_batches_leave_shard_counters_empty(self):
        metrics = ServeMetrics()
        metrics.record_batch(4, 3.0, 1, 2)
        assert metrics.shard_busy_seconds == {}
        assert metrics.shard_imbalance == 0.0
        snap = metrics.snapshot()
        assert snap["sharded_batches"] == 0
        assert snap["shard_busy_seconds"] == {}


class TestRoutingCounters:
    def test_routed_batches_and_pruned_fraction(self):
        from repro.plan import RoutingSummary

        metrics = ServeMetrics()
        routed = RoutingSummary(n_shards=4, n_queries=2, scanned_pairs=2, pruned_pairs=6)
        broadcast = RoutingSummary(n_shards=4, n_queries=2, scanned_pairs=8, pruned_pairs=0)
        metrics.record_batch(2, 1.0, 0, 0, shard_seconds=[1.0, 0, 0, 0], routing=routed)
        metrics.record_batch(2, 1.0, 0, 0, shard_seconds=[1.0, 1.0, 1.0, 1.0], routing=broadcast)
        assert metrics.routed_batches == 1
        assert metrics.sharded_batches == 2
        # 6 of 16 (query, shard) scan pairs were avoided across both batches.
        assert metrics.pruned_shard_fraction == pytest.approx(6 / 16)
        snap = metrics.snapshot()
        assert snap["routed_batches"] == 1
        assert snap["pruned_shard_fraction"] == pytest.approx(6 / 16)

    def test_unsharded_batches_leave_routing_counters_zero(self):
        metrics = ServeMetrics()
        metrics.record_batch(4, 3.0, 0, 0)
        assert metrics.routed_batches == 0
        assert metrics.pruned_shard_fraction == 0.0
        snap = metrics.snapshot()
        assert snap["routed_batches"] == 0
        assert snap["pruned_shard_fraction"] == 0.0

    def test_served_routed_traffic_feeds_the_counters(self):
        # End to end: band-local single-query batches on a range-sharded
        # sorted table are routed (pruned shards); forcing broadcast on
        # the same server is not.
        session = GenieSession()
        age = np.sort(np.random.default_rng(3).uniform(18, 90, size=400))
        job = np.random.default_rng(4).integers(0, 3, size=400)
        from repro.sa.relational import AttributeSpec

        session.create_index(
            {"age": age, "job": job}, model="relational",
            schema=[AttributeSpec("age", "numeric", bins=16),
                    AttributeSpec("job", "categorical")],
            name="adult", shards=4,
        )
        server = GenieServer(session, policy=BatchPolicy.fifo(), cache_size=None)
        server.submit("adult", {"age": (20.0, 22.0)}, k=3)
        server.submit("adult", {"age": (21.0, 23.0)}, k=3, route="broadcast")
        server.drain()
        snap = server.snapshot()
        assert snap["sharded_batches"] == 2
        assert snap["routed_batches"] == 1
        assert 0.0 < snap["pruned_shard_fraction"] < 1.0


class TestRejectedByReason:
    def test_queue_full_counts_under_its_reason(self):
        server = make_server(BatchPolicy.micro(max_batch=10, max_wait=100.0),
                             max_queue_depth=2)
        server.submit("tweets", DOCS[0], k=2)
        server.submit("tweets", DOCS[1], k=2)
        with pytest.raises(AdmissionError):
            server.submit("tweets", DOCS[2], k=2)
        assert server.metrics.rejected == 1  # legacy queue-full counter
        assert server.metrics.rejected_by_reason == {"queue_full": 1}
        server.drain()
        server.close()

    def test_bad_directive_and_closed_reasons(self):
        server = make_server()
        with pytest.raises(QueryError):
            server.submit("tweets", DOCS[0], k=0)
        with pytest.raises(ConfigError):
            server.submit("nope", DOCS[0], k=2)
        server.close()
        with pytest.raises(ConfigError, match="closed"):
            server.submit("tweets", DOCS[0], k=2)
        snap = server.snapshot()
        assert snap["rejected_by_reason"] == {"bad_directive": 2, "closed": 1}
        # Validation rejections never inflated the queue-full counter.
        assert snap["rejected"] == 0

    def test_burst_rejection_counts_every_request(self):
        server = make_server(BatchPolicy.micro(max_batch=10, max_wait=100.0),
                             max_queue_depth=3)
        with pytest.raises(AdmissionError):
            server.submit_many("tweets", DOCS[:5], k=2)
        assert server.metrics.rejected_by_reason == {"queue_full": 5}
        server.close()


class TestRollingShardWindow:
    def test_empty_window_reports_balance(self):
        metrics = ServeMetrics()
        assert metrics.rolling_window_batches == 0
        assert metrics.rolling_shard_imbalance == 0.0
        assert metrics.rolling_shard_seconds() == []

    def test_window_sums_per_position(self):
        metrics = ServeMetrics()
        metrics.record_batch(1, 3.0, 0, 0, shard_seconds=[1.0, 2.0])
        metrics.record_batch(1, 5.0, 0, 0, shard_seconds=[4.0, 1.0])
        assert metrics.rolling_window_batches == 2
        assert metrics.rolling_shard_seconds() == [5.0, 3.0]
        assert metrics.rolling_shard_imbalance == pytest.approx(5.0 / 4.0)

    def test_unsharded_batches_stay_out_of_the_window(self):
        metrics = ServeMetrics()
        metrics.record_batch(1, 1.0, 0, 0)
        assert metrics.rolling_window_batches == 0

    def test_window_evicts_oldest_batches(self):
        metrics = ServeMetrics(rolling_shard_window=2)
        metrics.record_batch(1, 9.0, 0, 0, shard_seconds=[9.0, 0.0])
        metrics.record_batch(1, 2.0, 0, 0, shard_seconds=[1.0, 1.0])
        metrics.record_batch(1, 2.0, 0, 0, shard_seconds=[1.0, 1.0])
        # the skewed first batch has rolled out
        assert metrics.rolling_shard_seconds() == [2.0, 2.0]
        assert metrics.rolling_shard_imbalance == pytest.approx(1.0)

    def test_rolling_differs_from_lifetime_imbalance(self):
        metrics = ServeMetrics(rolling_shard_window=2)
        metrics.record_batch(1, 9.0, 0, 0, shard_seconds=[9.0, 0.0])
        for _ in range(2):
            metrics.record_batch(1, 2.0, 0, 0, shard_seconds=[1.0, 1.0])
        # lifetime counters remember the skew; the window has moved on
        assert metrics.shard_imbalance > metrics.rolling_shard_imbalance

    def test_ragged_vectors_pad_with_zero(self):
        metrics = ServeMetrics()
        metrics.record_batch(1, 1.0, 0, 0, shard_seconds=[1.0])
        metrics.record_batch(1, 2.0, 0, 0, shard_seconds=[1.0, 1.0])
        assert metrics.rolling_shard_seconds() == [2.0, 1.0]

    def test_reset_rolling_shards_clears_only_the_window(self):
        metrics = ServeMetrics()
        metrics.record_batch(1, 3.0, 0, 0, shard_seconds=[2.0, 1.0])
        metrics.reset_rolling_shards()
        assert metrics.rolling_window_batches == 0
        assert metrics.rolling_shard_seconds() == []
        assert metrics.sharded_batches == 1  # lifetime counters survive

    def test_snapshot_exposes_rolling_gauges(self):
        metrics = ServeMetrics()
        metrics.record_batch(1, 3.0, 0, 0, shard_seconds=[2.0, 1.0])
        snap = metrics.snapshot()
        assert snap["rolling_window_batches"] == 1
        assert snap["rolling_shard_imbalance"] == pytest.approx(4.0 / 3.0)
        assert snap["replica_failovers"] == 0
        assert snap["replica_rebalances"] == 0
        assert snap["replica_re_replications"] == 0
