"""Tests for BatchPolicy and MicroBatchScheduler: triggers, fairness, lanes."""

import pytest

from repro.errors import ConfigError
from repro.serve.scheduler import BatchPolicy, MicroBatchScheduler


class _Req:
    """Minimal queued item: arrival/seq/lane, as the scheduler requires."""

    _next_seq = 0

    def __init__(self, arrival=0.0, lane=(10, ())):
        self.arrival = arrival
        self.lane = lane
        self.seq = _Req._next_seq
        _Req._next_seq += 1

    def __repr__(self):
        return f"_Req(seq={self.seq}, t={self.arrival}, lane={self.lane})"


class TestBatchPolicy:
    def test_defaults_are_micro(self):
        policy = BatchPolicy()
        assert policy.kind == "micro"
        assert policy.max_batch >= 1

    def test_fifo_is_single_request(self):
        policy = BatchPolicy.fifo()
        assert policy.kind == "fifo"
        assert policy.max_batch == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="policy kind"):
            BatchPolicy(kind="lifo")

    def test_bad_max_batch_rejected(self):
        with pytest.raises(ConfigError, match="max_batch"):
            BatchPolicy.micro(max_batch=0)

    def test_negative_max_wait_rejected(self):
        with pytest.raises(ConfigError, match="max_wait"):
            BatchPolicy.micro(max_wait=-1e-3)


class TestFifo:
    def test_global_arrival_order_across_indexes(self):
        sched = MicroBatchScheduler(BatchPolicy.fifo())
        a = _Req(arrival=0.1)
        b = _Req(arrival=0.2)
        c = _Req(arrival=0.15)
        sched.enqueue("x", a)
        sched.enqueue("x", b)
        sched.enqueue("y", c)
        batches = sched.pop_ready(now=1.0)
        assert [(name, reqs[0]) for name, reqs in batches] == [("x", a), ("y", c), ("x", b)]
        assert all(len(reqs) == 1 for _, reqs in batches)
        assert sched.depth == 0

    def test_arrival_tie_broken_by_seq(self):
        sched = MicroBatchScheduler(BatchPolicy.fifo())
        a = _Req(arrival=0.5)
        b = _Req(arrival=0.5)
        sched.enqueue("y", b)  # later seq enqueued first
        sched.enqueue("x", a)
        batches = sched.pop_ready(now=1.0)
        first, second = [reqs[0] for _, reqs in batches]
        assert (first, second) == ((a, b) if a.seq < b.seq else (b, a))

    def test_next_deadline_is_oldest_arrival(self):
        sched = MicroBatchScheduler(BatchPolicy.fifo())
        assert sched.next_deadline() is None
        sched.enqueue("x", _Req(arrival=0.7))
        sched.enqueue("y", _Req(arrival=0.3))
        assert sched.next_deadline() == 0.3


class TestMicro:
    def test_not_ready_before_wait_or_size(self):
        sched = MicroBatchScheduler(BatchPolicy.micro(max_batch=4, max_wait=0.5))
        sched.enqueue("x", _Req(arrival=0.0))
        sched.enqueue("x", _Req(arrival=0.1))
        assert sched.pop_ready(now=0.4) == []
        assert sched.depth == 2

    def test_size_trigger_dispatches_full_batch(self):
        sched = MicroBatchScheduler(BatchPolicy.micro(max_batch=3, max_wait=100.0))
        reqs = [_Req(arrival=0.0) for _ in range(3)]
        for r in reqs:
            sched.enqueue("x", r)
        batches = sched.pop_ready(now=0.0)
        assert batches == [("x", reqs)]

    def test_wait_trigger_fires_exactly_at_deadline(self):
        sched = MicroBatchScheduler(BatchPolicy.micro(max_batch=8, max_wait=0.5))
        first = _Req(arrival=0.25)
        sched.enqueue("x", first)
        deadline = sched.next_deadline()
        assert deadline == 0.25 + 0.5
        assert sched.pop_ready(now=deadline - 1e-9) == []
        batches = sched.pop_ready(now=deadline)
        assert batches == [("x", [first])]

    def test_round_robin_interleaves_ready_indexes(self):
        sched = MicroBatchScheduler(BatchPolicy.micro(max_batch=2, max_wait=0.0))
        hot = [_Req(arrival=0.0) for _ in range(6)]
        cold = [_Req(arrival=0.0)]
        for r in hot:
            sched.enqueue("hot", r)
        sched.enqueue("cold", cold[0])
        batches = sched.pop_ready(now=0.0)
        names = [name for name, _ in batches]
        # The cold index is served within the first sweep, not after every
        # hot batch: round-robin means position 0 or 1, never last.
        assert "cold" in names[:2]
        assert names.count("hot") == 3
        served_hot = [r for name, reqs in batches if name == "hot" for r in reqs]
        assert served_hot == hot  # order preserved within the hot queue

    def test_lane_gather_splits_incompatible_requests(self):
        sched = MicroBatchScheduler(BatchPolicy.micro(max_batch=8, max_wait=0.0))
        k10 = [_Req(arrival=0.0, lane=(10, ())) for _ in range(2)]
        k5 = _Req(arrival=0.0, lane=(5, ()))
        sched.enqueue("x", k10[0])
        sched.enqueue("x", k5)  # different lane interleaved
        sched.enqueue("x", k10[1])
        batches = sched.pop_ready(now=0.0)
        assert ("x", k10) in [(n, r) for n, r in batches]
        assert ("x", [k5]) in [(n, r) for n, r in batches]

    def test_pop_all_chunks_by_max_batch(self):
        sched = MicroBatchScheduler(BatchPolicy.micro(max_batch=2, max_wait=100.0))
        reqs = [_Req(arrival=0.0) for _ in range(5)]
        for r in reqs:
            sched.enqueue("x", r)
        batches = sched.pop_all()
        assert [len(r) for _, r in batches] == [2, 2, 1]
        assert [r for _, reqs in batches for r in reqs] == reqs
        assert sched.depth == 0

    def test_pop_all_ignores_readiness(self):
        sched = MicroBatchScheduler(BatchPolicy.micro(max_batch=2, max_wait=100.0))
        only = _Req(arrival=0.0)
        sched.enqueue("x", only)
        assert sched.pop_ready(now=0.0) == []  # neither size nor wait is due
        assert sched.pop_all() == [("x", [only])]

    def test_depths_per_index(self):
        sched = MicroBatchScheduler(BatchPolicy.micro(max_batch=8, max_wait=100.0))
        sched.enqueue("x", _Req())
        sched.enqueue("x", _Req())
        sched.enqueue("y", _Req())
        assert sched.depths() == {"x": 2, "y": 1}
        assert sched.depth == 3
