"""Tests for GenieServer: futures, admission, timing, drain/close."""

import numpy as np
import pytest

from repro.api import GenieSession
from repro.errors import AdmissionError, ConfigError, QueryError
from repro.serve import BatchPolicy, GenieServer, VirtualClock


def _docs(n=40):
    words = ["gpu", "index", "search", "fast", "cat", "dog", "tree", "blue",
             "red", "green", "warp", "batch", "queue", "cache", "merge", "scan"]
    rng = np.random.default_rng(0)
    return [" ".join(rng.choice(words, size=4, replace=False)) for _ in range(n)]


DOCS = _docs()


def make_server(policy=None, **kwargs):
    session = GenieSession()
    session.create_index(DOCS, model="document", name="tweets")
    kwargs.setdefault("cache_size", None)
    return GenieServer(session, policy=policy, **kwargs)


class TestSubmission:
    def test_fifo_submit_resolves_immediately(self):
        server = make_server(BatchPolicy.fifo())
        future = server.submit("tweets", DOCS[0], k=3)
        assert future.done()
        assert future.metadata.batch_size == 1
        assert len(future.result()) == 3

    def test_served_results_identical_to_direct_search(self):
        server = make_server(BatchPolicy.micro(max_batch=4, max_wait=1.0))
        queries = DOCS[:6]
        futures = [server.submit("tweets", q, k=5) for q in queries]
        server.drain()
        direct = server.session.index("tweets").search(queries, k=5)
        for future, expected in zip(futures, direct.results):
            assert np.array_equal(future.result().ids, expected.ids)
            assert np.array_equal(future.result().counts, expected.counts)

    def test_micro_future_pending_until_batch_fires(self):
        server = make_server(BatchPolicy.micro(max_batch=3, max_wait=100.0))
        futures = [server.submit("tweets", DOCS[i], k=2) for i in range(2)]
        assert not any(f.done() for f in futures)
        with pytest.raises(QueryError, match="not completed"):
            futures[0].result()
        futures.append(server.submit("tweets", DOCS[2], k=2))  # 3rd fills the batch
        assert all(f.done() for f in futures)
        assert {f.metadata.batch_size for f in futures} == {3}

    def test_submit_many_shares_one_batch(self):
        server = make_server(BatchPolicy.micro(max_batch=8, max_wait=100.0))
        futures = server.submit_many("tweets", DOCS[:5], k=2)
        server.drain()
        assert {f.metadata.batch_size for f in futures} == {5}

    def test_unknown_index_rejected(self):
        server = make_server()
        with pytest.raises(ConfigError, match="no index named"):
            server.submit("nope", DOCS[0])

    def test_bad_k_rejected(self):
        server = make_server()
        with pytest.raises(QueryError, match="k must be"):
            server.submit("tweets", DOCS[0], k=0)

    def test_unknown_option_rejected_at_submit(self):
        server = make_server()
        with pytest.raises(QueryError):
            server.submit("tweets", DOCS[0], k=2, n_candidates=8)

    def test_malformed_query_rejected_at_submit(self):
        # Unknown words fail admission, not someone else's coalesced batch.
        server = make_server(BatchPolicy.micro(max_batch=4, max_wait=100.0))
        with pytest.raises(QueryError, match="no indexed words"):
            server.submit("tweets", "zzzz qqqq")
        assert server.depth == 0

    def test_default_k_comes_from_index_config(self):
        server = make_server(BatchPolicy.fifo())
        future = server.submit("tweets", DOCS[0])
        assert future.metadata.k == server.session.index("tweets").config.k


class TestAdmissionControl:
    def test_queue_full_raises_admission_error(self):
        server = make_server(BatchPolicy.micro(max_batch=64, max_wait=100.0),
                             max_queue_depth=2)
        server.submit("tweets", DOCS[0], k=2)
        server.submit("tweets", DOCS[1], k=2)
        with pytest.raises(AdmissionError, match="queue is full"):
            server.submit("tweets", DOCS[2], k=2)
        assert server.snapshot()["rejected"] == 1
        server.drain()  # queued requests still complete

    def test_submit_many_is_all_or_nothing(self):
        server = make_server(BatchPolicy.micro(max_batch=64, max_wait=100.0),
                             max_queue_depth=3)
        with pytest.raises(AdmissionError):
            server.submit_many("tweets", DOCS[:5], k=2)
        assert server.depth == 0
        assert server.snapshot()["rejected"] == 5

    def test_depth_drops_after_dispatch(self):
        server = make_server(BatchPolicy.micro(max_batch=2, max_wait=100.0),
                             max_queue_depth=2)
        server.submit("tweets", DOCS[0], k=2)
        server.submit("tweets", DOCS[1], k=2)  # fills the batch -> dispatched
        assert server.depth == 0
        server.submit("tweets", DOCS[2], k=2)  # queue has room again

    def test_bad_queue_depth_rejected(self):
        session = GenieSession()
        with pytest.raises(ConfigError, match="max_queue_depth"):
            GenieServer(session, max_queue_depth=0)


class TestVirtualTime:
    def test_queue_time_measured_to_wait_deadline(self):
        clock = VirtualClock()
        server = make_server(BatchPolicy.micro(max_batch=8, max_wait=0.5), clock=clock)
        future = server.submit("tweets", DOCS[0], k=2)
        server.advance(2.0)  # deadline at 0.5 fires during the advance
        assert future.done()
        assert future.metadata.dispatched == 0.5
        assert future.metadata.queue_time == 0.5
        assert clock.now() == 2.0

    def test_deadlines_fire_in_order_during_advance(self):
        clock = VirtualClock()
        server = make_server(BatchPolicy.micro(max_batch=8, max_wait=0.5), clock=clock)
        first = server.submit("tweets", DOCS[0], k=2)
        clock.advance(0.3)
        second = server.submit("tweets", DOCS[1], k=2)
        server.advance(10.0)
        # Both rode the batch fired at the *first* request's deadline.
        assert first.metadata.dispatched == 0.5
        assert second.metadata.dispatched == 0.5
        assert second.metadata.queue_time == pytest.approx(0.2)

    def test_device_serializes_batches(self):
        server = make_server(BatchPolicy.fifo())
        a = server.submit("tweets", DOCS[0], k=2)
        b = server.submit("tweets", DOCS[1], k=2)
        # Both dispatched at t=0, but the device runs them back to back.
        assert a.metadata.started == 0.0
        assert b.metadata.started == a.metadata.completed
        assert b.metadata.completed > a.metadata.completed

    def test_latency_decomposes(self):
        server = make_server(BatchPolicy.micro(max_batch=2, max_wait=100.0))
        a = server.submit("tweets", DOCS[0], k=2)
        server.submit("tweets", DOCS[1], k=2)
        meta = a.metadata
        assert meta.latency == pytest.approx(
            meta.queue_time + (meta.started - meta.dispatched) + meta.service_time
        )

    def test_profile_share_splits_batch_profile(self):
        server = make_server(BatchPolicy.micro(max_batch=2, max_wait=100.0))
        a = server.submit("tweets", DOCS[0], k=2)
        server.submit("tweets", DOCS[1], k=2)
        share = a.metadata.profile_share()
        assert share.total == pytest.approx(a.metadata.profile.total / 2)


class TestLifecycle:
    def test_close_drains_and_refuses(self):
        server = make_server(BatchPolicy.micro(max_batch=64, max_wait=100.0))
        future = server.submit("tweets", DOCS[0], k=2)
        server.close()
        assert future.done()
        assert server.closed
        with pytest.raises(ConfigError, match="server is closed"):
            server.submit("tweets", DOCS[1], k=2)

    def test_close_is_idempotent(self):
        server = make_server()
        server.close()
        server.close()
        assert server.closed

    def test_context_manager_closes(self):
        with make_server(BatchPolicy.micro(max_batch=64, max_wait=100.0)) as server:
            future = server.submit("tweets", DOCS[0], k=2)
        assert server.closed
        assert future.done()

    def test_index_dropped_while_queued_fails_futures_gracefully(self):
        server = make_server(BatchPolicy.micro(max_batch=64, max_wait=100.0))
        future = server.submit("tweets", DOCS[0], k=2)
        server.session.drop("tweets")
        server.drain()  # must not raise
        assert future.done()
        with pytest.raises(ConfigError, match="no index named"):
            future.result()
        assert server.snapshot()["failed"] == 1

    def test_close_after_failing_batch_leaves_server_closed(self):
        # A non-ReproError escaping a batch during close()'s drain must
        # not leave the server open and admitting requests: the closed
        # flag is set before the drain.
        server = make_server(BatchPolicy.micro(max_batch=64, max_wait=100.0))
        future = server.submit("tweets", DOCS[0], k=2)

        def explode(*args, **kwargs):
            raise RuntimeError("batch blew up")

        server.session.index("tweets").search_encoded = explode
        with pytest.raises(RuntimeError, match="batch blew up"):
            server.close()
        assert server.closed
        with pytest.raises(ConfigError, match="server is closed"):
            server.submit("tweets", DOCS[1], k=2)
        # The popped request's future is failed, never stranded pending.
        assert future.done()
        with pytest.raises(RuntimeError, match="batch blew up"):
            future.result()
        assert server.snapshot()["failed"] == 1

    def test_failing_batch_never_strands_sibling_batches(self):
        # A dispatch pass pops every ready batch eagerly; if one raises a
        # non-ReproError, sibling batches can no longer be retried (they
        # are no longer queued), so their futures must fail too.
        session = GenieSession()
        session.create_index(DOCS[:20], model="document", name="a")
        session.create_index(DOCS[20:], model="document", name="b")
        server = GenieServer(session, policy=BatchPolicy.micro(max_batch=64, max_wait=100.0),
                             cache_size=None)
        futures = [server.submit("a", DOCS[0], k=2), server.submit("b", DOCS[21], k=2)]

        def explode(*args, **kwargs):
            raise RuntimeError("batch blew up")

        session.index("a").search_encoded = explode
        session.index("b").search_encoded = explode
        with pytest.raises(RuntimeError, match="batch blew up"):
            server.drain()
        assert all(future.done() for future in futures)
        for future in futures:
            with pytest.raises(RuntimeError, match="batch blew up"):
                future.result()
        assert server.depth == 0
        assert server.snapshot()["failed"] == 2

    def test_session_failure_fails_futures_not_server(self):
        server = make_server(BatchPolicy.micro(max_batch=64, max_wait=100.0))
        future = server.submit("tweets", DOCS[0], k=2)
        server.session.close()  # out from under the server
        server.drain()
        assert future.done()
        with pytest.raises(ConfigError, match="session is closed"):
            future.result()
        assert server.snapshot()["failed"] == 1


class TestDeterminism:
    def test_repeated_runs_snapshot_identically(self):
        def run():
            server = make_server(BatchPolicy.micro(max_batch=4, max_wait=2e-6))
            for i, doc in enumerate(DOCS[:12]):
                server.advance(1e-6)
                server.submit("tweets", doc, k=3)
            server.drain()
            return server.snapshot()

        assert run() == run()


class TestPlannerDirectives:
    def _mixed_server(self, **kwargs):
        session = GenieSession()
        session.create_index(DOCS, model="document", name="serial")
        session.create_index(DOCS, model="document", name="sharded", shards=2)
        kwargs.setdefault("cache_size", None)
        return GenieServer(session, policy=BatchPolicy.fifo(), **kwargs)

    def test_server_defaults_do_not_poison_serial_indexes(self):
        # Server-wide route/plan defaults are shard strategies; a serial
        # index on a mixed-index server must stay servable.
        server = self._mixed_server(route="broadcast", plan="two-round")
        serial = server.submit("serial", DOCS[0], k=2)
        sharded = server.submit("sharded", DOCS[0], k=2)
        server.drain()
        assert np.array_equal(serial.result().ids, sharded.result().ids)

    def test_explicit_directive_on_serial_index_still_rejected(self):
        server = self._mixed_server()
        with pytest.raises(QueryError, match="requires a sharded index"):
            server.submit("serial", DOCS[0], k=2, route="broadcast")

    def test_normalized_directives_share_a_lane(self):
        # None and the explicit "auto" normalize identically, so they
        # must coalesce into one batch. A forced plan="one-round" is a
        # *different* directive — on a calibrated session auto may
        # resolve per batch, so the lanes must not mix a forced merge
        # with a costed one.
        session = GenieSession()
        session.create_index(DOCS, model="document", name="sharded", shards=2)
        server = GenieServer(
            session, policy=BatchPolicy.micro(max_batch=4, max_wait=1.0),
            cache_size=None,
        )
        a = server.submit("sharded", DOCS[0], k=2)
        b = server.submit("sharded", DOCS[1], k=2, route="auto", plan="auto")
        c = server.submit("sharded", DOCS[2], k=2, plan="one-round")
        server.drain()
        assert a.metadata.batch_size == 2
        assert b.metadata.batch_size == 2
        assert c.metadata.batch_size == 1

    def test_bad_server_default_fails_at_construction(self):
        # Constructor misconfiguration is ConfigError (like every other
        # constructor); QueryError stays for per-request problems.
        session = GenieSession()
        session.create_index(DOCS, model="document", name="tweets")
        with pytest.raises(ConfigError, match="unknown route"):
            GenieServer(session, route="prune")  # typo for "pruned"
        with pytest.raises(ConfigError, match="unknown plan"):
            GenieServer(session, plan="tput")

    def test_different_directives_never_share_a_batch(self):
        session = GenieSession()
        session.create_index(DOCS, model="document", name="sharded", shards=2)
        server = GenieServer(
            session, policy=BatchPolicy.micro(max_batch=4, max_wait=1.0),
            cache_size=None,
        )
        a = server.submit("sharded", DOCS[0], k=2)
        b = server.submit("sharded", DOCS[1], k=2, route="broadcast")
        server.drain()
        assert a.metadata.batch_size == 1
        assert b.metadata.batch_size == 1


class TestServerExplain:
    def test_explain_resolves_server_defaults_like_submit(self):
        session = GenieSession()
        session.create_index(DOCS, model="document", name="sharded", shards=2)
        server = GenieServer(
            session, policy=BatchPolicy.fifo(), cache_size=None,
            route="broadcast",
        )
        rendered = server.explain("sharded", DOCS[0], k=2).render()
        assert "broadcast" in rendered

    def test_per_request_directive_overrides_the_default(self):
        session = GenieSession()
        session.create_index(DOCS, model="document", name="sharded", shards=2)
        server = GenieServer(
            session, policy=BatchPolicy.fifo(), cache_size=None,
            plan="two-round",
        )
        assert "two-round-tput" in server.explain("sharded", DOCS[0], k=4).render()
        rendered = server.explain("sharded", DOCS[0], k=4, plan="one-round").render()
        assert "Merge(one-round" in rendered

    def test_explain_on_serial_index_ignores_shard_defaults(self):
        # Same leniency as submit: server-wide directives are shard
        # strategies and must not poison a serial index's explain.
        server = self._mixed_server(route="broadcast", plan="two-round")
        rendered = server.explain("serial", DOCS[0], k=2).render()
        assert rendered.startswith("Scan(")

    def test_explain_matches_what_submit_executes(self):
        server = self._mixed_server(plan="two-round")
        explained = server.explain("sharded", DOCS[0], k=4)
        future = server.submit("sharded", DOCS[0], k=4)
        server.drain()
        assert future.done()
        executed = server.session.index("sharded").last_result
        assert executed.plan.render() == explained.render()

    def test_explain_admits_and_charges_nothing(self):
        server = self._mixed_server()
        before = server.snapshot()
        server.explain("sharded", DOCS[0], k=2)
        after = server.snapshot()
        assert after["submitted"] == before["submitted"]
        assert after["batches"] == before["batches"]
        assert server.session.host.timings.get("plan_route") == 0.0

    def test_explain_validates_like_submit(self):
        server = self._mixed_server()
        with pytest.raises(ConfigError, match="no index named"):
            server.explain("nope", DOCS[0])
        with pytest.raises(QueryError, match="requires a sharded index"):
            server.explain("serial", DOCS[0], k=2, route="broadcast")

    _mixed_server = TestPlannerDirectives._mixed_server


class TestPrunedFractionRegressions:
    def test_all_broadcast_traffic_reports_zero(self):
        # pruned_shard_fraction must read 0.0 — not NaN, not a division
        # error — when every sharded batch broadcast (nothing avoided).
        session = GenieSession()
        session.create_index(DOCS, model="document", name="sharded", shards=2)
        server = GenieServer(session, policy=BatchPolicy.fifo(), cache_size=None)
        for i in range(3):
            server.submit("sharded", DOCS[i], k=2, route="broadcast")
        server.drain()
        snap = server.snapshot()
        assert snap["sharded_batches"] == 3
        assert snap["pruned_shard_fraction"] == 0.0

    def test_serial_only_traffic_reports_zero(self):
        server = make_server(BatchPolicy.fifo())
        server.submit("tweets", DOCS[0], k=2)
        server.drain()
        assert server.snapshot()["pruned_shard_fraction"] == 0.0
