"""Bench: shard-pruned routing vs broadcast on Fig. 12-style skewed traffic.

The Fig. 12 skew story at the planner level: an Adult-like table *sorted
by age* is range-partitioned across 4 simulated shard devices, so every
narrow age-band query's postings live in the one or two shards holding
its band. Traffic is band-local single-query batches (the serving shape —
online requests arrive one at a time), which is exactly where the
planner's shard-pruning rule fires: each batch is routed to its eligible
shards instead of broadcasting to all N.

Throughput is the *cluster* throughput of the routed fleet: every batch's
per-shard scan seconds (taken from ``SearchResult.shard_profiles``, all
deterministic simulated time) are list-scheduled onto the four shard
device timelines. A broadcast batch occupies all four devices at once, so
batches serialize; a routed batch occupies only its eligible shards, so
batches on disjoint shards overlap — routing converts pruned shard time
directly into concurrency. Results are asserted **bit-identical** between
every strategy before any number is reported.

The third row runs the two-round TPUT merge on top of routing: round one
fetches ``ceil(2k/N)`` candidates per shard and the top-up round only
fires where a shard's round-one threshold proves it necessary. On
single-shard band traffic the one busy shard always tops up (its
round-one pool cannot reach ``k``), so TPUT loses there. The fourth row
is the calibrated cost-based ``auto`` (PR 6): the planner prices the
route x merge lattice per batch and must land on the pruned one-round
plan by itself. The second table shows the workload two-round is *for*:
an evenly-spread (hash-sharded) ANN batch at larger ``k``, where the
round-one pool's cutoff lets most shards skip the top-up and the smaller
per-shard fetch width wins (``benchmarks/test_cost_model.py`` shows the
costed auto discovering that merge unprompted).
"""

import numpy as np

from repro.api import GenieSession
from repro.datasets.relational import adult_schema, make_adult_like
from repro.experiments.table import ResultTable

N_ROWS = 20000
N_QUERIES = 96
N_SHARDS = 4
K = 10
SEED = 0

# The session is calibrated (PR 6), so bare directives would enumerate
# and price the lattice; the comparison rows force their strategies and
# the last row is the costed "auto" — the plan the calibrated planner
# picks on its own, which must match the best forced row here.
STRATEGY_ROWS = (
    ("broadcast", {"route": "broadcast", "plan": "one-round"}),
    ("routed", {"route": "pruned", "plan": "one-round"}),
    ("routed+tput", {"route": "pruned", "plan": "two-round"}),
    ("auto (costed)", {}),
)


def _sorted_adult():
    """Adult-like rows sorted by age so each age band is contiguous."""
    columns = make_adult_like(n=N_ROWS, seed=SEED)
    order = np.argsort(columns["age"], kind="stable")
    return {name: values[order] for name, values in columns.items()}


def _age_band_queries(columns):
    """Narrow age-band queries following the (skewed) age distribution."""
    rng = np.random.default_rng(SEED + 1)
    rows = rng.choice(N_ROWS, size=N_QUERIES, replace=True)
    ages = [float(columns["age"][int(row)]) for row in rows]
    return [{"age": (age - 1.0, age + 1.0)} for age in ages]


def _schedule(batches):
    """List-schedule per-shard batch seconds onto shard device timelines.

    Each batch starts when every shard it scans is free (the encoded
    batch is scattered to its shards together) and occupies each scanned
    shard for that shard's profile seconds. Returns the makespan.
    """
    shard_free = [0.0] * N_SHARDS
    makespan = 0.0
    for shard_seconds in batches:
        scanned = [s for s, seconds in enumerate(shard_seconds) if seconds > 0]
        if not scanned:
            continue
        start = max(shard_free[s] for s in scanned)
        for s in scanned:
            shard_free[s] = start + shard_seconds[s]
        makespan = max(makespan, max(shard_free[s] for s in scanned))
    return makespan


def _run_strategy(handle, queries, **mode):
    batches = []
    pruned_pairs = 0
    scanned_pairs = 0
    results = []
    for query in queries:
        result = handle.search([query], k=K, **mode)
        results.append(result.results[0])
        batches.append([p.query_total() for p in result.shard_profiles])
        pruned_pairs += result.routing.pruned_pairs
        scanned_pairs += result.routing.scanned_pairs
    makespan = _schedule(batches)
    busy = sum(sum(b) for b in batches)
    return dict(
        results=results,
        makespan=makespan,
        busy=busy,
        pruned_fraction=pruned_pairs / max(1, pruned_pairs + scanned_pairs),
    )


def _tput_table():
    """One-round vs two-round merge on TPUT's home turf: even spread."""
    rng = np.random.default_rng(SEED)
    points = rng.normal(size=(8000, 16))
    queries = list(
        points[rng.choice(8000, size=64, replace=False)]
        + 0.01 * rng.normal(size=(64, 16))
    )
    session = GenieSession()
    handle = session.create_index(
        points, model="ann-e2lsh", num_functions=32, dim=16, width=4.0,
        seed=0, domain=1024, name="ann", shards=8, shard_strategy="hash",
    )
    k = 50
    one = handle.search(queries, k=k)
    two = handle.search(queries, k=k, plan="two-round")
    for expected, got in zip(one.results, two.results):
        assert np.array_equal(expected.ids, got.ids)
        assert np.array_equal(expected.counts, got.counts)
        assert expected.threshold == got.threshold
    table = ResultTable(
        title="Two-round TPUT merge: evenly-spread hash-sharded ANN batch",
        columns=["merge", "batch_us", "speedup", "first_round_k"],
        notes=[
            "E2LSH m=32 signatures over 8000 points, 64 queries in one",
            f"batch, k={k}, 8 hash shards (candidates spread evenly).",
            "Round one fetches ceil(2k/8)=13 per shard; the ~2k-candidate",
            "pool's cutoff lets most shards prove their tail irrelevant",
            "and skip the top-up, so the smaller fetch width wins. Results",
            "bit-identical to the one-round merge (asserted).",
        ],
    )
    one_s = one.profile.query_total()
    two_s = two.profile.query_total()
    from repro.plan import ShardScanNode

    table.add_row(merge="one-round", batch_us=one_s * 1e6, speedup=1.0,
                  first_round_k=k)
    table.add_row(merge="two-round-tput", batch_us=two_s * 1e6,
                  speedup=one_s / two_s,
                  first_round_k=two.plan.find(ShardScanNode).k)
    return table, one_s / two_s


def test_plan_routing(benchmark, emit, cost_coefficients):
    columns = _sorted_adult()
    queries = _age_band_queries(columns)

    session = GenieSession()
    session.cost_coefficients = cost_coefficients
    handle = session.create_index(
        columns, model="relational", schema=adult_schema(), name="adult",
        shards=N_SHARDS,
    )

    def run_all():
        return {name: _run_strategy(handle, queries, **mode)
                for name, mode in STRATEGY_ROWS}

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    reference = runs["broadcast"]["results"]
    for name, run in runs.items():
        for expected, got in zip(reference, run["results"]):
            assert np.array_equal(expected.ids, got.ids), name
            assert np.array_equal(expected.counts, got.counts), name
            assert expected.threshold == got.threshold, name

    table = ResultTable(
        title="Query routing: pruned vs broadcast shard plans, skewed sorted-Adult traffic",
        columns=["strategy", "throughput_qps", "speedup", "makespan_ms",
                 "busy_ms", "pruned_shard_fraction"],
        notes=[
            f"Adult-like table ({N_ROWS} rows) sorted by age, range-partitioned",
            f"across {N_SHARDS} simulated shard devices; {N_QUERIES} narrow age-band",
            "queries following the skewed age distribution, one batch each",
            "(the serving shape). Per-batch per-shard seconds come from",
            "SearchResult.shard_profiles and are list-scheduled onto the",
            "shard timelines: broadcast occupies every shard per batch,",
            "routed batches overlap on disjoint shards. Results asserted",
            "bit-identical across all four strategies before reporting.",
            "virtual-device timing: identical numbers on every run/machine.",
        ],
    )
    base = runs["broadcast"]["makespan"]
    speedups = {}
    for name, run in runs.items():
        speedups[name] = base / run["makespan"]
        table.add_row(
            strategy=name,
            throughput_qps=N_QUERIES / run["makespan"],
            speedup=speedups[name],
            makespan_ms=run["makespan"] * 1e3,
            busy_ms=run["busy"] * 1e3,
            pruned_shard_fraction=run["pruned_fraction"],
        )
    tput_table, tput_speedup = _tput_table()
    emit(table, tput_table)

    assert runs["routed"]["pruned_fraction"] > 0.4, (
        "band-local traffic should prune most shards"
    )
    assert speedups["routed"] >= 1.5, (
        f"routed throughput only {speedups['routed']:.2f}x over broadcast"
    )
    assert runs["routed"]["busy"] < runs["broadcast"]["busy"], (
        "routing must reduce aggregate shard-device busy time"
    )
    assert tput_speedup >= 1.3, (
        f"two-round merge only {tput_speedup:.2f}x on its even-spread workload"
    )
    assert speedups["auto (costed)"] >= 0.95 * speedups["routed"], (
        "costed auto must stay within 5% of the best forced strategy "
        f"({speedups['auto (costed)']:.2f}x vs {speedups['routed']:.2f}x)"
    )
