"""Bench: tracing overhead — the observer must not move the clock.

The serve-throughput workload is replayed twice on identically seeded
servers: once untraced, once with the tracer on at sample rate 1.0
(every request builds its full span tree). Spans are bookkeeping *about*
simulated work, not simulated work — so the traced run must reproduce
the untraced run's simulated throughput within 5%. In practice the two
clocks agree exactly; the 5% band is the acceptance ceiling, leaving
room for a future implementation that charges tracing to the host
model. Wall-clock cost is also reported (informational: it varies by
machine and is not asserted).
"""

import time

import numpy as np

from repro.api import GenieSession
from repro.datasets.documents import make_document_queries, make_tweets_like
from repro.experiments.table import ResultTable
from repro.serve import BatchPolicy, GenieServer, TrafficSource, run_open_loop, sample_trace

N_REQUESTS = 192
RATE = 5e7  # saturating offered load, requests per simulated second
SEED = 11
MAX_OVERHEAD = 0.05


def _workload():
    docs = make_tweets_like(n=1500, seed=1)
    pool, _ = make_document_queries(docs, 48, seed=9)

    def build_session():
        session = GenieSession()
        session.create_index(docs, model="document", name="tweets")
        return session

    sources = [
        TrafficSource("tweets", lambda rng: pool[int(rng.integers(len(pool)))],
                      weight=1.0, k=10),
    ]
    return build_session, sources


def _serve(build_session, sources, trace_sample):
    session = build_session()
    server = GenieServer(
        session, policy=BatchPolicy.micro(max_batch=32, max_wait=1e-4),
        cache_size=None, max_queue_depth=N_REQUESTS, trace_sample=trace_sample,
    )
    trace = sample_trace(sources, N_REQUESTS, rate=RATE, seed=SEED)
    started = time.perf_counter()
    _, rejected = run_open_loop(server, trace)
    wall = time.perf_counter() - started
    assert rejected == 0, "benchmark queue must admit the whole trace"
    snap = server.snapshot()
    snap["wall_seconds"] = wall
    server.close()
    return snap


def test_obs_overhead(benchmark, emit):
    build_session, sources = _workload()
    untraced = _serve(build_session, sources, trace_sample=None)
    traced = benchmark.pedantic(
        lambda: _serve(build_session, sources, trace_sample=1),
        rounds=1, iterations=1,
    )

    overhead = (untraced["throughput_qps"] - traced["throughput_qps"]) \
        / untraced["throughput_qps"]

    table = ResultTable(
        title="Tracing overhead: identical seeded traffic, tracer off vs sample rate 1.0",
        columns=["mode", "requests", "traces", "throughput_qps",
                 "p99_latency_s", "overhead_pct", "wall_seconds"],
        volatile=["wall_seconds"],
        notes=[
            f"open-loop Poisson trace: {N_REQUESTS} document requests at "
            f"{RATE:.0e} req/s offered, seed {SEED}; micro batching 32/1e-4 s.",
            "overhead_pct compares simulated throughput (virtual clock);"
            " spans record simulated work, they must not add any.",
            f"acceptance: traced throughput within {MAX_OVERHEAD:.0%} of untraced.",
            "wall_seconds is informational only (machine-dependent).",
        ],
    )
    for mode, snap in (("untraced", untraced), ("traced", traced)):
        table.add_row(
            mode=mode,
            requests=snap["completed"],
            traces=snap["traces"],
            throughput_qps=snap["throughput_qps"],
            p99_latency_s=snap["latency_p99"],
            overhead_pct=100.0 * ((untraced["throughput_qps"] - snap["throughput_qps"])
                                  / untraced["throughput_qps"]),
            wall_seconds=snap["wall_seconds"],
        )
    emit(table)

    assert traced["traces"] == N_REQUESTS, "sample rate 1.0 must trace every request"
    assert untraced["traces"] == 0
    # Served answers are byte-identical either way, so the simulated
    # clocks should agree exactly; the 5% band is the hard ceiling.
    assert np.isclose(traced["completed"], untraced["completed"])
    assert overhead <= MAX_OVERHEAD, (
        f"tracing cost {overhead:.2%} simulated throughput (limit {MAX_OVERHEAD:.0%})")
