"""Bench: Table V — OCR 1-NN prediction quality."""

from repro.experiments import table5_ocr_prediction


def test_table5_ocr_prediction(benchmark, emit):
    table = benchmark.pedantic(
        lambda: table5_ocr_prediction.run(n=3000, n_queries=200), rounds=1, iterations=1
    )
    emit(table)
    genie = table.where(method="GENIE")[0]
    gpu_lsh = table.where(method="GPU-LSH")[0]
    assert genie["accuracy"] > gpu_lsh["accuracy"]
