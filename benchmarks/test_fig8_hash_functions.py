"""Bench: Fig. 8 — minimum required LSH functions vs similarity."""

from repro.experiments import fig8_hash_functions


def test_fig8_hash_functions(benchmark, emit):
    table = benchmark.pedantic(fig8_hash_functions.run, rounds=1, iterations=1)
    emit(table)
    peak = max(m for m in table.column("required_m"))
    assert 200 <= peak <= 250  # paper reads ~237
