"""Bench: Fig. 9 — total running time vs number of queries, five datasets."""

from repro.experiments import fig9_time_vs_queries


def test_fig9_time_vs_queries(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig9_time_vs_queries.run(query_counts=(32, 64, 128, 256), n=3000),
        rounds=1,
        iterations=1,
    )
    emit(table)
    for dataset in ("ocr", "sift", "tweets", "adult"):
        genie = table.where(dataset=dataset, system="GENIE", n_queries=256)[0]["seconds"]
        spq = table.where(dataset=dataset, system="GPU-SPQ", n_queries=256)[0]["seconds"]
        assert spq > 5 * genie, f"GENIE should dominate GPU-SPQ on {dataset}"
