"""Shared fixtures for the benchmark harness.

Every figure/table benchmark runs its experiment once under
``pytest-benchmark`` and *emits* the resulting table: printed to stdout
(visible with ``pytest benchmarks/ --benchmark-only -s``) and saved under
``benchmarks/results/`` so a benchmark run regenerates the paper's numbers
as artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the regenerated figure/table text files."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def cost_coefficients() -> dict:
    """Calibrated stage-cost coefficients for the default device spec.

    Calibration replays a probe workload on a scratch session and is the
    expensive step (it builds a production-scale LSH index), so the
    benchmarks that price plans share one run. Deterministic for the
    default ``(device spec, seed)``, like every other simulated number.
    """
    from repro.api import GenieSession

    session = GenieSession()
    try:
        return session.calibrate_cost_model(seed=0)
    finally:
        session.close()


@pytest.fixture
def emit(results_dir, request):
    """Emit one or more ResultTables for the current benchmark.

    Stdout gets the live rendering (wall-clock numbers included); the
    saved ``.txt`` artifact gets the *stable* rendering, with any
    columns the table marks ``volatile`` masked so the file is
    byte-identical across runs and machines.
    """

    def _emit(*tables):
        name = request.node.name.replace("test_", "", 1)
        stable = "\n\n".join(t.format(stable=True) for t in tables)
        (results_dir / f"{name}.txt").write_text(stable + "\n")
        print()
        print("\n\n".join(t.format() for t in tables))

    return _emit
