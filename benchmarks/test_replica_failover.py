"""Bench: replicated serving — failover survival and self-healing recuts.

Three tables, all in deterministic simulated seconds (no wall clock, so
the emitted artifact is byte-stable without masking):

1. **Kill a device mid-drain** — the sorted-Adult age-band workload
   served through ``create_index(..., shards=4, replicas=R)`` while a
   seeded :class:`FaultPlan` permanently crashes device 1 halfway
   through the submit horizon. With ``replicas=1`` the dead shard's
   queries fail with a clean :class:`AvailabilityError` (never a hang,
   never a silent drop; pruned routing keeps the other shards
   answering). With ``replicas>=2`` every future completes and every
   answer is asserted **bit-identical** to the fault-free run — the
   kill shows up only as failover retries and the re-replication copies
   the server schedules to heal the groups.
2. **Degraded throughput** — the same workload with device 1 running an
   8x slowdown instead of a crash. A single-replica cluster is dragged
   down by its hottest member; with ``replicas=2`` the least-loaded
   replica selection steers shard 1's scans to its surviving copy and
   recovers most of the healthy throughput.
3. **Self-healing recut** — the shard-scaling benchmark's skew story,
   closed: sorted-Adult range partitioning concentrates ~1.6x the mean
   busy time on the hot shard. A :class:`RebalancePolicy` watching the
   rolling shard imbalance recuts the range bounds online (plan caches
   invalidated, served answers unchanged) and pulls the rolling
   imbalance under 1.15 while keyword-bounds pruning keeps working.
"""

import numpy as np

from repro.api import GenieSession
from repro.datasets.relational import adult_schema, make_adult_like
from repro.errors import AvailabilityError
from repro.experiments.table import ResultTable
from repro.replica import FaultEvent, FaultPlan, RebalancePolicy
from repro.serve import BatchPolicy, GenieServer

ADULT_ROWS = 20000
ADULT_QUERIES = 48
K = 10
SEED = 0

#: Virtual seconds between submits; 48 submits span 4.8e-4 s.
SUBMIT_GAP = 1e-5
#: The permanent crash lands after submit 24 — mid-drain.
KILL_AT = ADULT_QUERIES / 2 * SUBMIT_GAP

REBALANCE_REPEATS = 8
REBALANCE_POLICY = dict(threshold=1.2, min_window=12, cooldown=20)


def _sorted_adult():
    """Adult-like rows sorted by age so each age band is contiguous."""
    columns = make_adult_like(n=ADULT_ROWS, seed=SEED)
    order = np.argsort(columns["age"], kind="stable")
    return {name: values[order] for name, values in columns.items()}


def _age_band_queries(columns):
    """Narrow age-range queries sampled from the (skewed) age column."""
    rng = np.random.default_rng(SEED + 1)
    rows = rng.choice(ADULT_ROWS, size=ADULT_QUERIES, replace=False)
    ages = [float(columns["age"][int(row)]) for row in rows]
    return [{"age": (age - 1.0, age + 1.0)} for age in ages]


def _serve(columns, queries, replicas, plan=None, policy=None, repeats=1):
    """Serve ``repeats`` passes of the workload; resolve every future."""
    session = GenieSession()
    handle = session.create_index(
        columns, model="relational", schema=adult_schema(), name="adult",
        shards=4, replicas=replicas, shard_strategy="range",
    )
    if plan is not None:
        session.inject_faults(plan)
    server = GenieServer(
        session, policy=BatchPolicy.micro(max_batch=4, max_wait=1e-4),
        cache_size=None, max_queue_depth=ADULT_QUERIES * repeats,
        rebalance=policy,
    )
    futures = []
    for _ in range(repeats):
        for query in queries:
            server.advance(SUBMIT_GAP)
            futures.append(server.submit("adult", query, k=K))
    server.drain()
    results, failed = [], 0
    for future in futures:
        try:
            r = future.result()
            results.append(
                (
                    tuple(np.asarray(r.ids).ravel()),
                    tuple(np.asarray(r.counts).ravel()),
                )
            )
        except AvailabilityError:
            results.append(None)
            failed += 1
    snapshot = server.snapshot()
    server.close()
    session.close()
    return results, failed, snapshot, handle


def _failover_table(columns, queries, baseline, baseline_snap):
    kill = FaultPlan([FaultEvent(device=1, start=KILL_AT)])
    table = ResultTable(
        title="Kill device 1 mid-drain: survival by replica count (sorted-Adult, 4 shards)",
        columns=["replicas", "completed", "failed", "failovers",
                 "re_replications", "throughput_qps", "identical"],
        notes=[
            f"{ADULT_QUERIES} narrow age-band requests, submit gap "
            f"{SUBMIT_GAP:.0e} s; device 1 crashes permanently at "
            f"t={KILL_AT:.1e} s (after submit {ADULT_QUERIES // 2}).",
            "replicas=1: the dead shard's queries fail with a clean",
            "AvailabilityError (counted under failed); pruned routing keeps",
            "every other shard answering. replicas>=2: zero failed futures,",
            "answers bit-identical to the fault-free run (asserted); the",
            "server re-replicates the dead device's groups onto live devices.",
            "virtual-device timing: identical numbers on every run/machine.",
        ],
    )
    outcomes = {}
    for replicas in (1, 2, 3):
        results, failed, snap, _ = _serve(columns, queries, replicas, plan=kill)
        identical = all(
            got == want
            for got, want in zip(results, baseline)
            if got is not None
        )
        outcomes[replicas] = (failed, identical, snap)
        table.add_row(
            replicas=replicas,
            completed=snap["completed"],
            failed=failed,
            failovers=snap["replica_failovers"],
            re_replications=snap["replica_re_replications"],
            throughput_qps=snap["throughput_qps"],
            identical="yes" if identical else "NO",
        )
    return table, outcomes


def _degraded_table(columns, queries, baseline, baseline_snap):
    slow = FaultPlan(
        [FaultEvent(device=1, start=0.0, kind="slow", factor=8.0)]
    )
    table = ResultTable(
        title="Degraded cluster: device 1 slowed 8x, replica steering vs stuck",
        columns=["replicas", "throughput_qps", "healthy_fraction", "identical"],
        notes=[
            "same workload, device 1 serves at 1/8 speed for the whole run.",
            "replicas=1 is dragged down by its hottest shard; replicas=2",
            "steers shard 1's scans to the surviving copy (least-loaded",
            "rolling busy seconds) and recovers most healthy throughput.",
        ],
    )
    qps = {}
    for replicas in (1, 2):
        results, failed, snap, _ = _serve(columns, queries, replicas, plan=slow)
        if failed:
            raise AssertionError("slowdowns must never fail a future")
        qps[replicas] = snap["throughput_qps"]
        table.add_row(
            replicas=replicas,
            throughput_qps=snap["throughput_qps"],
            healthy_fraction=snap["throughput_qps"] / baseline_snap["throughput_qps"],
            identical="yes" if results == baseline else "NO",
        )
    return table, qps


def _rebalance_table(columns, queries):
    static_results, _, static_snap, _ = _serve(
        columns, queries, replicas=1, repeats=REBALANCE_REPEATS
    )
    policy = RebalancePolicy(**REBALANCE_POLICY)
    healed_results, _, healed_snap, handle = _serve(
        columns, queries, replicas=1, policy=policy, repeats=REBALANCE_REPEATS
    )
    table = ResultTable(
        title="Self-healing recut: sorted-Adult range skew under a RebalancePolicy",
        columns=["mode", "rebalances", "imbalance", "rolling_imbalance",
                 "pruned_shard_fraction", "shard_sizes"],
        notes=[
            f"{REBALANCE_REPEATS}x{ADULT_QUERIES} age-band requests; policy "
            f"threshold {REBALANCE_POLICY['threshold']}, window "
            f"{REBALANCE_POLICY['min_window']}, cooldown "
            f"{REBALANCE_POLICY['cooldown']} batches.",
            "static: range partitioning concentrates the skewed age bands'",
            "busy time on one shard. policy: the server recuts the range",
            "bounds online from rolling busy seconds — answers unchanged",
            "(asserted), plan cache invalidated, pruning still effective.",
            "imbalance = max/mean lifetime shard busy; rolling_imbalance is",
            "the post-recut window the policy actually watches.",
        ],
    )
    for mode, snap, h_sizes in (
        ("static", static_snap, None),
        ("policy", healed_snap, [len(p.corpus) for p in handle._parts]),
    ):
        table.add_row(
            mode=mode,
            rebalances=snap["replica_rebalances"],
            imbalance=snap["shard_imbalance"],
            rolling_imbalance=snap["rolling_shard_imbalance"],
            pruned_shard_fraction=snap["pruned_shard_fraction"],
            shard_sizes="/".join(map(str, h_sizes)) if h_sizes else "5000/5000/5000/5000",
        )
    return table, static_results, healed_results, static_snap, healed_snap


def test_replica_failover(benchmark, emit):
    columns = _sorted_adult()
    queries = _age_band_queries(columns)

    baseline, failed, baseline_snap, _ = _serve(columns, queries, replicas=2)
    assert failed == 0

    failover, outcomes = benchmark.pedantic(
        lambda: _failover_table(columns, queries, baseline, baseline_snap),
        rounds=1, iterations=1,
    )
    degraded, qps = _degraded_table(columns, queries, baseline, baseline_snap)
    rebalance, static_results, healed_results, static_snap, healed_snap = (
        _rebalance_table(columns, queries)
    )
    emit(failover, degraded, rebalance)

    # --- survival: replicas=2 rides out a mid-drain permanent kill
    for replicas in (2, 3):
        failed_r, identical, snap = outcomes[replicas]
        assert failed_r == 0, f"replicas={replicas} failed {failed_r} futures"
        assert identical, f"replicas={replicas} diverged from fault-free run"
        assert snap["replica_failovers"] > 0
        assert snap["replica_re_replications"] > 0
    failed_1, identical_1, snap_1 = outcomes[1]
    assert failed_1 > 0, "replicas=1 must surface the dead shard"
    assert failed_1 < ADULT_QUERIES, "pruned routing should keep other shards up"
    assert identical_1, "surviving replicas=1 answers must still be exact"

    # --- degradation: replica steering beats a stuck hot shard
    assert qps[2] > 3.0 * qps[1], (
        f"replica steering gained only {qps[2] / qps[1]:.2f}x under the slowdown"
    )

    # --- self-healing: the recut closes the sorted-skew imbalance
    assert static_snap["shard_imbalance"] > 1.4
    assert healed_snap["replica_rebalances"] >= 1
    assert healed_snap["rolling_shard_imbalance"] <= 1.15, (
        f"recut left rolling imbalance at "
        f"{healed_snap['rolling_shard_imbalance']:.3f}"
    )
    assert healed_snap["pruned_shard_fraction"] > 0, (
        "rebalancing must not cost the keyword-bounds routing"
    )
    assert healed_results == static_results, "recut changed served answers"
