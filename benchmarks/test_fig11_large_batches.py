"""Bench: Fig. 11 — very large query batches on SIFT."""

from repro.experiments import fig11_large_batches


def test_fig11_large_batches(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig11_large_batches.run(n=3000, query_counts=(256, 512, 1024, 2048)),
        rounds=1,
        iterations=1,
    )
    emit(table)
    last = table.rows[-1]
    assert last["genie_seconds"] < last["gpu_lsh_seconds"]
