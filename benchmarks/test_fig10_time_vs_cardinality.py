"""Bench: Fig. 10 — running time vs data cardinality (fixed batch)."""

from repro.experiments import fig10_time_vs_cardinality


def test_fig10_time_vs_cardinality(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig10_time_vs_cardinality.run(
            cardinalities=(1000, 2000, 4000), n_queries=128
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    genie_small = table.where(dataset="sift", system="GENIE", cardinality=1000)[0]["seconds"]
    genie_large = table.where(dataset="sift", system="GENIE", cardinality=4000)[0]["seconds"]
    assert genie_small < genie_large
