"""Bench: online serving — fifo vs dynamic micro-batching on seeded traffic.

GENIE's throughput claim is a *batch* claim; this harness checks it
survives the trip through an online request queue. A three-modality
traffic mix (document / ANN / relational single-query requests, seeded
Poisson arrivals at a rate that saturates the device) is replayed against
a `GenieServer` twice:

* ``fifo`` — every request is its own kernel launch (the no-batching
  baseline), and
* ``micro`` — dynamic micro-batching under ``max_batch=32`` /
  ``max_wait=100us``,

plus a third pass of ``micro`` with the exact-match cache enabled on a
mix with repeating hot queries. Time is *simulated seconds* on the
server's virtual clock, so every number in the emitted table — including
the latency percentiles — is deterministic, and the >= 3x
micro-batching speedup is asserted unconditionally (no wall-clock
variance to absorb). Every served result is checked bit-identical to a
direct ``IndexHandle.search`` of the same query.
"""

import numpy as np

from repro.api import GenieSession
from repro.datasets.documents import make_document_queries, make_tweets_like
from repro.datasets.relational import adult_schema, make_adult_like
from repro.datasets.synthetic import make_sift_like
from repro.experiments.table import ResultTable
from repro.serve import BatchPolicy, GenieServer, TrafficSource, run_open_loop, sample_trace

N_REQUESTS = 256
RATE = 5e7  # offered load in requests per simulated second: saturating
SEED = 7


def _workload():
    docs = make_tweets_like(n=2000, seed=1)
    doc_pool, _ = make_document_queries(docs, 64, seed=9)
    sift = make_sift_like(n=2000, n_queries=8, seed=3)
    table = make_adult_like(n=4000, seed=5)

    def build_session():
        session = GenieSession()
        session.create_index(docs, model="document", name="tweets")
        session.create_index(
            sift.data, model="ann-e2lsh", num_functions=32, dim=sift.dim,
            width=4.0, domain=256, seed=4, name="sift",
        )
        session.create_index(table, model="relational", schema=adult_schema(), name="adult")
        return session

    def adult_query(rng):
        lo = float(rng.uniform(10, 60))
        return {
            "age": (lo, lo + 25.0),
            "education_num": (float(rng.uniform(0, 40)), 100.0),
            "sex": (int(rng.integers(0, 2)),) * 2,
        }

    sources = [
        TrafficSource("tweets", lambda rng: doc_pool[int(rng.integers(len(doc_pool)))],
                      weight=0.4, k=10),
        TrafficSource("sift", lambda rng: rng.standard_normal(sift.dim), weight=0.4, k=10),
        TrafficSource("adult", adult_query, weight=0.2, k=10),
    ]
    return build_session, sources


def _serve(build_session, sources, policy, cache_size=None, seed=SEED):
    session = build_session()
    server = GenieServer(session, policy=policy, cache_size=cache_size,
                         max_queue_depth=N_REQUESTS)
    trace = sample_trace(sources, N_REQUESTS, rate=RATE, seed=seed)
    served, rejected = run_open_loop(server, trace)
    assert rejected == 0, "benchmark queue must admit the whole trace"
    # Served answers must be bit-identical to a direct search of the same
    # query against the same index (cache hits included).
    for arrival, future in served:
        direct = session.index(arrival.index).search([arrival.raw_query], k=arrival.k)
        assert np.array_equal(future.result().ids, direct[0].ids)
        assert np.array_equal(future.result().counts, direct[0].counts)
    return server.snapshot()


def test_serve_throughput(benchmark, emit):
    build_session, sources = _workload()
    fifo = _serve(build_session, sources, BatchPolicy.fifo())
    micro = benchmark.pedantic(
        lambda: _serve(build_session, sources, BatchPolicy.micro(max_batch=32, max_wait=1e-4)),
        rounds=1, iterations=1,
    )

    # Hot-query pass: a handful of repeating queries, exact-match cache on.
    hot_pool, _ = make_document_queries(make_tweets_like(n=2000, seed=1), 8, seed=30)
    hot_sources = [
        TrafficSource("tweets", lambda rng: hot_pool[int(rng.integers(len(hot_pool)))],
                      weight=1.0, k=10),
    ]
    cached = _serve(build_session, hot_sources, BatchPolicy.micro(max_batch=32, max_wait=1e-4),
                    cache_size=1024)

    table = ResultTable(
        title="Serve: fifo vs dynamic micro-batching (simulated seconds, seeded traffic)",
        columns=["policy", "requests", "batches", "mean_batch", "throughput_qps",
                 "p50_latency_s", "p95_latency_s", "p99_latency_s", "cache_hits", "speedup"],
        notes=[
            f"open-loop Poisson trace: {N_REQUESTS} requests at {RATE:.0e} req/s offered, "
            f"mix tweets 40% / sift 40% / adult 20%, seed {SEED}.",
            "micro policy: max_batch=32, max_wait=1e-4 s; fifo: one kernel launch per request.",
            "cached row: single hot-document mix (8 repeating queries), exact-match LRU on.",
            "all served results asserted bit-identical to direct IndexHandle.search.",
            "virtual-clock timing: identical numbers on every run/machine.",
        ],
    )
    for name, snap in (("fifo", fifo), ("micro", micro), ("micro+cache", cached)):
        table.add_row(
            policy=name,
            requests=snap["completed"],
            batches=snap["batches"],
            mean_batch=snap["mean_batch_size"],
            throughput_qps=snap["throughput_qps"],
            p50_latency_s=snap["latency_p50"],
            p95_latency_s=snap["latency_p95"],
            p99_latency_s=snap["latency_p99"],
            cache_hits=snap["cache"]["hits"] if snap["cache"] else 0,
            speedup=snap["throughput_qps"] / fifo["throughput_qps"],
        )
    emit(table)

    speedup = micro["throughput_qps"] / fifo["throughput_qps"]
    assert micro["mean_batch_size"] > 4.0, "micro-batching failed to coalesce the stream"
    assert speedup >= 3.0, f"micro-batching throughput regressed: {speedup:.2f}x fifo"
    assert cached["cache_hits"] > 0 and cached["throughput_qps"] > micro["throughput_qps"]
