"""Bench: Tables II + III — multi-loading scalability on SIFT_LARGE."""

from repro.experiments import table2_multiload


def test_table2_multiload(benchmark, emit):
    table2, table3 = benchmark.pedantic(
        lambda: table2_multiload.run(
            sizes=(4000, 8000, 16000, 24000), part_size=4000, n_queries=128
        ),
        rounds=1,
        iterations=1,
    )
    emit(table2, table3)
    seconds = table2.column("genie_seconds")
    assert seconds == sorted(seconds)  # linear growth with parts
