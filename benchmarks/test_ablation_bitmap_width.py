"""Bench: ablation — Bitmap-Counter width vs per-query memory."""

from repro.experiments import ablations


def test_ablation_bitmap_width(benchmark, emit):
    table = benchmark.pedantic(ablations.run_bitmap_width, rounds=1, iterations=1)
    emit(table)
    assert table.rows[0]["ratio"] > table.rows[-1]["ratio"]
