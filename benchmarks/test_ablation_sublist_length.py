"""Bench: ablation — load-balance sublist length sweep."""

from repro.experiments import ablations


def test_ablation_sublist_length(benchmark, emit):
    table = benchmark.pedantic(
        lambda: ablations.run_sublist_length(n=30_000), rounds=1, iterations=1
    )
    emit(table)
    seconds = table.column("seconds")
    assert seconds[0] <= seconds[-1]
