"""Bench: Table VI — DBLP top-1 accuracy vs modification rate."""

from repro.experiments import table6_dblp_accuracy


def test_table6_dblp_accuracy(benchmark, emit):
    table = benchmark.pedantic(
        lambda: table6_dblp_accuracy.run(n=2000, n_queries=96), rounds=1, iterations=1
    )
    emit(table)
    accuracies = table.column("accuracy")
    assert accuracies[0] >= 0.98  # ~1.0 at 10% modification
    assert accuracies[-1] >= 0.7  # still high at 40%
