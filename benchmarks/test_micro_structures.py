"""Microbenchmarks of GENIE's core data structures (wall-clock, not simulated).

These measure the *Python implementation's* own speed with pytest-benchmark:
c-PQ updates, Robin Hood inserts, bit-packed counter ops, SPQ selection and
the vectorized engine path. They guard against performance regressions in
the reproduction itself.
"""

import numpy as np
import pytest

from repro.core.bitmap_counter import BitmapCounter
from repro.core.cpq import CountPriorityQueue
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.hash_table import RobinHoodHashTable
from repro.core.selection import topk_from_counts
from repro.core.spq_select import spq_topk
from repro.core.types import Corpus, Query
from repro.sa.edit_distance import edit_distance

RNG = np.random.default_rng(0)


def test_bitmap_counter_bulk_load(benchmark):
    bc = BitmapCounter(100_000, count_bound=255)
    counts = RNG.integers(0, 255, size=100_000)
    benchmark(bc.load_counts, counts)
    assert bc.get(0) == counts[0]


def test_cpq_reference_updates(benchmark):
    stream = RNG.integers(0, 2_000, size=5_000)

    def run():
        cpq = CountPriorityQueue(2_000, k=10, count_bound=31)
        for obj in stream:
            cpq.update(int(obj))
        return cpq

    cpq = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cpq.audit_threshold >= 1


def test_robin_hood_inserts(benchmark):
    keys = RNG.integers(0, 10_000, size=2_000)

    def run():
        ht = RobinHoodHashTable(4096)
        for i, key in enumerate(keys):
            ht.put(int(key), i % 32)
        return ht

    ht = benchmark.pedantic(run, rounds=3, iterations=1)
    assert ht.size > 0


def test_spq_selection(benchmark):
    counts = RNG.integers(0, 64, size=200_000)
    result, _ = benchmark(spq_topk, counts, 100)
    assert len(result) == 100


def test_vectorized_topk(benchmark):
    counts = RNG.integers(0, 64, size=200_000)
    result = benchmark(topk_from_counts, counts, 100)
    assert len(result) == 100


def test_engine_query_batch(benchmark):
    corpus = Corpus([RNG.integers(0, 500, size=16) for _ in range(5_000)])
    engine = GenieEngine(config=GenieConfig(k=10)).fit(corpus)
    queries = [Query.from_keywords(RNG.integers(0, 500, size=16)) for _ in range(32)]
    results = benchmark(engine.query, queries)
    assert len(results) == 32


def test_edit_distance_vectorized_dp(benchmark):
    a = "".join(RNG.choice(list("abcdefgh"), size=200))
    b = "".join(RNG.choice(list("abcdefgh"), size=200))
    d = benchmark(edit_distance, a, b)
    assert 0 < d <= 200
