"""Bench: Table VII — sequence accuracy and time vs shortlist size K."""

from repro.experiments import table7_sequence_k


def test_table7_sequence_k(benchmark, emit):
    table = benchmark.pedantic(
        lambda: table7_sequence_k.run(n=1500, n_queries=48), rounds=1, iterations=1
    )
    emit(table)
    frac = 0.4
    small = table.where(K=8, modified_fraction=frac)[0]["accuracy"]
    large = table.where(K=256, modified_fraction=frac)[0]["accuracy"]
    assert large >= small
