"""Micro-benchmark: the vectorized batch match pipeline vs per-query scans.

Measures *wall-clock host time* (not simulated device seconds) of the two
functionally identical pipelines on a Fig.-9-style 256-query LSH workload
(OCR shape: 32 hash functions over a 1024-bucket re-hash domain, 8000
objects, k=10):

* legacy: one :func:`plan_query_scan` + :func:`topk_from_counts` per query
  (dict position-map walk, per-query ``bincount``/selection), and
* batch: one :func:`plan_batch_scan` for the whole batch (CSR span
  resolution, fused-key ``bincount`` tiles, cache-resident cost/selection
  sweep).

The emitted table records the before/after numbers; the assertion guards
the speedup that motivated the batch pipeline (>= 5x measured on the
development machine, asserted at 3x to absorb machine variance).
"""

import os
import time

import numpy as np

from repro.core.batch_scan import plan_batch_scan
from repro.core.engine import GenieConfig, GenieEngine
from repro.core.inverted_index import InvertedIndex
from repro.core.scan_kernel import plan_query_scan
from repro.core.selection import topk_from_counts
from repro.core.types import Corpus, Query
from repro.experiments.table import ResultTable

M, DOMAIN, N_OBJECTS, N_QUERIES, K = 32, 1024, 8000, 256, 10


def _workload():
    rng = np.random.default_rng(0)
    base = np.arange(M) * DOMAIN
    corpus = Corpus([base + rng.integers(0, DOMAIN, size=M) for _ in range(N_OBJECTS)])
    queries = [
        Query.from_keywords(base + rng.integers(0, DOMAIN, size=M)) for _ in range(N_QUERIES)
    ]
    return corpus, queries


def _best_of(fn, rounds=3):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_batch_pipeline_speedup(benchmark, emit):
    corpus, queries = _workload()
    index = InvertedIndex.build(corpus)

    def legacy():
        plans = [plan_query_scan(index, q, i, K) for i, q in enumerate(queries)]
        return [topk_from_counts(plan.counts, K) for plan in plans]

    def batch():
        return plan_batch_scan(index, queries, K, select=True).results

    # Warm both paths (lazy dict / int32 caches), check they agree, then time.
    for a, b in zip(legacy(), batch()):
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.counts, b.counts)
        assert a.threshold == b.threshold

    legacy_s = _best_of(legacy)
    benchmark.pedantic(batch, rounds=3, iterations=1)  # pytest-benchmark record
    batch_s = _best_of(batch)

    engine = GenieEngine(config=GenieConfig(k=K)).fit(corpus)
    engine.query(queries)
    engine_s = _best_of(lambda: engine.query(queries))

    speedup = legacy_s / batch_s
    table = ResultTable(
        title="Micro: batch match pipeline vs per-query scans (wall-clock)",
        columns=["stage", "per_query_ms", "batch_ms", "speedup"],
        volatile=["per_query_ms", "batch_ms", "speedup"],
        notes=[
            f"fig9 OCR-style workload: m={M}, domain={DOMAIN}, "
            f"n={N_OBJECTS}, {N_QUERIES} queries, k={K}.",
            "per_query = plan_query_scan + topk_from_counts per query;"
            " batch = plan_batch_scan(select=True) for the whole batch.",
            "engine row: full GenieEngine.query wall time on the same batch"
            " (transfers + launch simulation included), for scale.",
        ],
    )
    table.add_row(
        stage="match+select pipeline",
        per_query_ms=legacy_s * 1e3,
        batch_ms=batch_s * 1e3,
        speedup=speedup,
    )
    table.add_row(stage="engine.query end-to-end", per_query_ms=None, batch_ms=engine_s * 1e3, speedup=None)
    emit(table)

    if os.environ.get("CI"):
        # Shared CI runners have wildly variable wall-clock; the recorded
        # table is still uploaded, but only a total inversion fails there.
        assert speedup >= 1.0, f"batch pipeline slower than per-query: {speedup:.2f}x"
    else:
        assert speedup >= 3.0, f"batch pipeline speedup regressed: {speedup:.2f}x"
