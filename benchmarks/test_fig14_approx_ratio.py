"""Bench: Fig. 14 — approximation ratio vs k on SIFT."""

from repro.experiments import fig14_approx_ratio


def test_fig14_approx_ratio(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig14_approx_ratio.run(n=2500, n_queries=48), rounds=1, iterations=1
    )
    emit(table)
    k1 = table.where(k=1)[0]
    k64 = table.where(k=64)[0]
    assert k1["gpu_lsh_ratio"] > k1["genie_ratio"]
    assert k64["gpu_lsh_ratio"] < k1["gpu_lsh_ratio"]
