"""Bench: Fig. 13 — GENIE vs GEN-SPQ (c-PQ effectiveness)."""

from repro.experiments import fig13_cpq_effect


def test_fig13_cpq_effect(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig13_cpq_effect.run(query_counts=(32, 64, 128, 256), n=3000),
        rounds=1,
        iterations=1,
    )
    emit(table)
    for dataset in ("ocr", "sift", "tweets", "adult"):
        genie = table.where(dataset=dataset, system="GENIE", n_queries=256)[0]["seconds"]
        gen_spq = table.where(dataset=dataset, system="GEN-SPQ", n_queries=256)[0]["seconds"]
        assert gen_spq > genie
