"""Bench: ablation — Robin Hood expired-overwrite modification."""

from repro.experiments import ablations


def test_ablation_robin_hood(benchmark, emit):
    table = benchmark.pedantic(ablations.run_robin_hood, rounds=1, iterations=1)
    emit(table)
    with_mod = table.where(expired_overwrite=True)[0]
    without = table.where(expired_overwrite=False)[0]
    assert with_mod["probes_per_insert"] < without["probes_per_insert"]
