"""Bench: ablation — re-hash domain D vs tau-ANN quality."""

from repro.experiments import ablations


def test_ablation_rehash_domain(benchmark, emit):
    table = benchmark.pedantic(
        lambda: ablations.run_rehash_domain(n=2500, n_queries=32), rounds=1, iterations=1
    )
    emit(table)
    assert table.rows[-1]["approx_ratio"] <= table.rows[0]["approx_ratio"] * 1.05
