"""Bench: sharded multi-device scaling + partition-skew load imbalance.

Two tables, both in deterministic simulated seconds:

1. **Shard scaling** — the fig9 OCR workload (RBH signatures over the
   OCR-like point set, 256 queries, k=10) searched through
   ``GenieSession.create_index(..., shards=N)`` for N in {1, 2, 4, 8}.
   Each shard scans its corpus slice on its own simulated device; batch
   latency is the critical path (slowest shard + host merge), so
   throughput rises as the skewed RBH postings split across devices.
   Every sharded result is asserted **bit-identical** to the unsharded
   index (ids, counts, tie order), and the 4-shard configuration must
   deliver >= 2.5x the 1-shard simulated throughput.

2. **Load imbalance** — Fig. 12's skew story at the cluster level. An
   Adult-like table is *sorted by age* and hit with narrow age-range
   traffic served through a ``GenieServer``: under range partitioning
   each query's postings live in the one shard that holds its age band,
   and the skewed age distribution makes that band's shard hot while
   the rest idle. The server's per-shard busy-time counters expose the
   imbalance; hash partitioning of the same rows evens it back out.
"""

import numpy as np

from repro.api import GenieSession
from repro.datasets import registry
from repro.datasets.relational import adult_schema, make_adult_like
from repro.experiments.common import fit_genie_ocr
from repro.experiments.table import ResultTable
from repro.serve import BatchPolicy, GenieServer

SHARD_COUNTS = (1, 2, 4, 8)
N_QUERIES = 256
K = 10
SEED = 0

ADULT_ROWS = 20000
ADULT_QUERIES = 48


def _ocr_workload():
    """The fig9 OCR setup: RBH-keyword corpus + 256 encoded queries."""
    dataset = registry.load("ocr", seed=SEED)
    setup = fit_genie_ocr(dataset, k=K, seed=SEED)
    transformer = setup.index.transformer
    corpus = transformer.to_corpus(dataset.data)
    reps = int(np.ceil(N_QUERIES / len(dataset.queries)))
    raw = np.tile(dataset.queries, (reps, 1))[:N_QUERIES]
    queries = transformer.to_queries(raw)
    return list(corpus.keyword_arrays), queries, setup.index.engine.config


def _shard_scaling_table(objects, queries, config):
    unsharded = (
        GenieSession(config=config)
        .create_index(objects, model="raw", name="ocr")
        .search(queries, k=K)
    )
    base_seconds = None
    table = ResultTable(
        title="Shard scaling: fig9 OCR workload across N simulated devices",
        columns=["shards", "seconds", "throughput_qps", "speedup",
                 "slowest_shard_s", "mean_shard_s", "merge_s"],
        notes=[
            f"fig9 OCR workload: RBH m=32 domain=1024, {len(objects)} objects, "
            f"{N_QUERIES} queries, k={K}, range partition.",
            "seconds = critical path (slowest shard + host merge) of one",
            "ShardedIndexHandle.search; results bit-identical to the",
            "unsharded index at every shard count (asserted).",
            "virtual-device timing: identical numbers on every run/machine.",
        ],
    )
    speedups = {}
    for n_shards in SHARD_COUNTS:
        session = GenieSession(config=config)
        handle = session.create_index(
            objects, model="raw", name="ocr", shards=n_shards
        )
        result = handle.search(queries, k=K)
        for expected, got in zip(unsharded.results, result.results):
            assert np.array_equal(expected.ids, got.ids)
            assert np.array_equal(expected.counts, got.counts)
        seconds = result.profile.query_total()
        if base_seconds is None:
            base_seconds = seconds
        shard_totals = [p.query_total() for p in result.shard_profiles]
        speedups[n_shards] = base_seconds / seconds
        table.add_row(
            shards=n_shards,
            seconds=seconds,
            throughput_qps=N_QUERIES / seconds,
            speedup=speedups[n_shards],
            slowest_shard_s=max(shard_totals),
            mean_shard_s=sum(shard_totals) / len(shard_totals),
            merge_s=result.profile.get("result_merge"),
        )
    return table, speedups


def _sorted_adult():
    """Adult-like rows sorted by age so each age band is contiguous."""
    columns = make_adult_like(n=ADULT_ROWS, seed=SEED)
    order = np.argsort(columns["age"], kind="stable")
    return {name: values[order] for name, values in columns.items()}


def _age_band_queries(columns):
    """Narrow age-range queries sampled from the (skewed) age column."""
    rng = np.random.default_rng(SEED + 1)
    rows = rng.choice(ADULT_ROWS, size=ADULT_QUERIES, replace=False)
    ages = [float(columns["age"][int(row)]) for row in rows]
    return [{"age": (age - 1.0, age + 1.0)} for age in ages]


def _serve_adult(columns, queries, strategy, n_shards=4):
    session = GenieSession()
    session.create_index(
        columns, model="relational", schema=adult_schema(), name="adult",
        shards=n_shards, shard_strategy=strategy,
    )
    server = GenieServer(
        session, policy=BatchPolicy.micro(max_batch=16, max_wait=1e-4),
        cache_size=None, max_queue_depth=ADULT_QUERIES,
    )
    for query in queries:
        server.advance(1e-5)
        server.submit("adult", query, k=K)
    server.drain()
    return server.snapshot()


def _imbalance_table(snapshots):
    table = ResultTable(
        title="Load imbalance: skewed (sorted) Adult postings, 4 shards, served traffic",
        columns=["strategy", "requests", "batches", "shard_busy_us", "imbalance"],
        notes=[
            f"Adult-like table ({ADULT_ROWS} rows) sorted by age; narrow",
            "age-range queries served via GenieServer (micro-batching).",
            "shard_busy_us: per-shard device busy time (simulated us).",
            "imbalance = max / mean shard busy time (1.0 = balanced);",
            "range partitioning puts each query's age band in one shard",
            "and the skewed age distribution makes that shard hot; hash",
            "partitioning spreads every band across all shards",
            "(the Fig. 12 skew story, one level up).",
        ],
    )
    for strategy, snap in snapshots.items():
        busy = snap["shard_busy_seconds"]
        table.add_row(
            strategy=strategy,
            requests=snap["completed"],
            batches=snap["batches"],
            shard_busy_us="/".join(f"{busy[s] * 1e6:.1f}" for s in sorted(busy)),
            imbalance=snap["shard_imbalance"],
        )
    return table


def test_shard_scaling(benchmark, emit):
    objects, queries, config = _ocr_workload()
    scaling, speedups = benchmark.pedantic(
        lambda: _shard_scaling_table(objects, queries, config), rounds=1, iterations=1
    )

    columns = _sorted_adult()
    adult_queries = _age_band_queries(columns)
    snapshots = {strategy: _serve_adult(columns, adult_queries, strategy)
                 for strategy in ("range", "hash")}
    imbalance = _imbalance_table(snapshots)
    emit(scaling, imbalance)

    assert speedups[4] >= 2.5, (
        f"4-shard throughput scaled only {speedups[4]:.2f}x over 1 shard"
    )
    assert speedups[8] > speedups[2], "scaling collapsed before 8 shards"
    assert snapshots["range"]["shard_imbalance"] > 1.4, (
        "sorted-skew range partition should concentrate the busy time"
    )
    assert snapshots["hash"]["shard_imbalance"] < 1.1, (
        "hash partition failed to even out the sorted skew"
    )
