"""Bench: Table I — per-stage time profile of GENIE."""

from repro.experiments import table1_profiling


def test_table1_profiling(benchmark, emit):
    table = benchmark.pedantic(
        lambda: table1_profiling.run(n_queries=256, n=3000), rounds=1, iterations=1
    )
    emit(table)
    for row in table.rows:
        assert row["query_transfer"] < row["match"]
