"""Bench: Fig. 12 — load balancing on the Adult workload."""

from repro.experiments import fig12_load_balance


def test_fig12_load_balance(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig12_load_balance.run(n=30_000), rounds=1, iterations=1
    )
    emit(table)
    assert table.rows[0]["GENIE_LB"] < table.rows[0]["GENIE_noLB"]
