"""Bench: online ingest — delta segments vs refit-per-batch.

GENIE's index is built offline; the streaming layer's claim is that a
trickle of inserts should not cost a full rebuild per batch. This
harness replays the same seeded ingest workload — rounds of small
insert batches interleaved with served queries — three ways:

* ``stream`` — ``handle.insert`` into delta segments with the default
  threshold-driven auto-compaction,
* ``stream-nocompact`` — same, compaction disabled (delta growth
  baseline), and
* ``refit`` — ``handle.fit`` of the accumulated corpus before each
  round's queries (the only option before ``repro.stream``).

Cost is total simulated seconds accrued on the session's host and
device pool (index builds included — that is the point), so every
number is deterministic and the >= 3x sustained-throughput claim is
asserted unconditionally. Final streamed answers are checked
bit-identical to a from-scratch refit of the final corpus.
"""

import numpy as np

from repro.api import GenieSession
from repro.experiments.table import ResultTable
from repro.stream import StreamConfig

N_BASE = 1500
VOCAB = 100
ROUNDS = 25
BATCH = 20          # objects inserted per round
QUERIES_PER_ROUND = 8
K = 10
SHARDS = 4
SEED = 11


def _corpus(rng, n):
    return [
        rng.integers(0, VOCAB, size=int(rng.integers(2, 6))).tolist()
        for _ in range(n)
    ]


def _workload():
    rng = np.random.default_rng(SEED)
    base = _corpus(rng, N_BASE)
    batches = [_corpus(rng, BATCH) for _ in range(ROUNDS)]
    queries = [
        [rng.integers(0, VOCAB, size=3).tolist() for _ in range(QUERIES_PER_ROUND)]
        for _ in range(ROUNDS)
    ]
    return base, batches, queries


def _sim_seconds(session):
    """Simulated seconds accrued session-wide: host + every pool device."""
    return session.host.timings.total + sum(
        d.timings.total for d in session._device_pool
    )


def _run(mode, base, batches, queries):
    session = GenieSession()
    stream_config = None
    if mode == "stream":
        stream_config = StreamConfig()  # default thresholds, auto-compact on
    elif mode == "stream-nocompact":
        stream_config = StreamConfig(auto_compact=False)
    handle = session.create_index(
        base, model="raw", name="live", shards=SHARDS,
        shard_strategy="range", stream_config=stream_config,
    )
    corpus = list(base)
    start = _sim_seconds(session)
    final = None
    for batch, round_queries in zip(batches, queries):
        corpus.extend(batch)
        if mode == "refit":
            handle.fit(corpus)
        else:
            handle.insert(batch)
        final = handle.search(round_queries, k=K)
    elapsed = _sim_seconds(session) - start
    manifest = handle.manifest
    stats = {
        "mode": mode,
        "elapsed": elapsed,
        "qps": ROUNDS * QUERIES_PER_ROUND / elapsed,
        "delta_postings": manifest.delta_postings if manifest else 0,
        "compactions": manifest.compactions if manifest else 0,
        "final": final,
        "corpus": corpus,
    }
    session.close()
    return stats


def test_stream_ingest(benchmark, emit):
    base, batches, queries = _workload()
    stream = benchmark.pedantic(
        lambda: _run("stream", base, batches, queries), rounds=1, iterations=1
    )
    nocompact = _run("stream-nocompact", base, batches, queries)
    refit = _run("refit", base, batches, queries)

    # Ground truth: one from-scratch fit of the final corpus.
    truth_session = GenieSession()
    truth = truth_session.create_index(
        stream["corpus"], model="raw", name="truth",
        shards=SHARDS, shard_strategy="range",
    ).search(queries[-1], k=K)
    for mode in (stream, nocompact, refit):
        for got, want in zip(mode["final"].results, truth.results):
            assert np.array_equal(got.ids, want.ids)
            assert np.array_equal(got.counts, want.counts)
            assert got.threshold == want.threshold
    truth_session.close()

    table = ResultTable(
        title="Streaming ingest: delta segments vs refit-per-batch "
              "(simulated seconds)",
        columns=["mode", "ingest_rounds", "served_queries", "sim_seconds",
                 "throughput_qps", "speedup_vs_refit", "delta_postings",
                 "compactions"],
        notes=[
            f"{N_BASE} base objects + {ROUNDS} rounds x {BATCH} inserts, "
            f"{QUERIES_PER_ROUND} queries/round at k={K}, {SHARDS} range "
            f"shards, seed {SEED}.",
            "sim_seconds includes index builds: the refit mode pays a full "
            "rebuild per round, the stream modes only delta-part builds "
            "(and, for `stream`, threshold-driven compactions).",
            "delta_postings is the manifest's final backlog: bounded by "
            "auto-compaction, unbounded without it.",
            "final-round answers asserted bit-identical to a from-scratch "
            "fit of the final corpus, all three modes.",
        ],
    )
    for stats in (stream, nocompact, refit):
        table.add_row(
            mode=stats["mode"],
            ingest_rounds=ROUNDS,
            served_queries=ROUNDS * QUERIES_PER_ROUND,
            sim_seconds=stats["elapsed"],
            throughput_qps=stats["qps"],
            speedup_vs_refit=stats["qps"] / refit["qps"],
            delta_postings=stats["delta_postings"],
            compactions=stats["compactions"],
        )
    emit(table)

    speedup = stream["qps"] / refit["qps"]
    assert speedup >= 3.0, f"streamed ingest regressed: {speedup:.2f}x refit"
    assert stream["compactions"] >= 1, "workload never tripped auto-compaction"
    assert stream["delta_postings"] < nocompact["delta_postings"], (
        "compaction failed to bound the delta backlog"
    )
