"""Bench: Table IV — per-query device memory, GENIE vs GEN-SPQ."""

from repro.experiments import table4_memory


def test_table4_memory(benchmark, emit):
    table = benchmark.pedantic(table4_memory.run, rounds=1, iterations=1)
    emit(table)
    for row in table.rows:
        assert row["ratio"] > 5
