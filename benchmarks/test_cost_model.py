"""Bench: the calibrated cost model — prediction accuracy and the auto win.

Replays the two serving workloads the planner must price correctly and
checks the cost model against the simulator's own clocks:

* **Skewed band traffic** (the ``plan_routing`` home workload): an
  Adult-like table sorted by age, range-partitioned over 4 shards, 96
  narrow age-band single-query batches. Concentrated postings, chi -> 1:
  the model must predict per-batch device time within 25% *and* the
  costed ``auto`` must keep picking the pruned one-round plan (two-round
  always loses here — the busy shard always tops up).
* **Evenly-spread hash-sharded ANN** (the TPUT home workload): e2lsh
  signatures over 8000 points, one 64-query batch at ``k=50`` across 8
  hash shards. Clustered per-shard thresholds let most pairs skip the
  top-up: the costed ``auto`` must discover the two-round merge on its
  own (nobody passes ``plan=``) and collect >= 1.3x over the forced
  one-round merge.

Every auto result is asserted bit-identical to its forced counterpart
before any number is reported — calibration quality can only ever move
*cost*, never answers.
"""

import numpy as np

from repro.api import GenieSession
from repro.datasets.relational import adult_schema, make_adult_like
from repro.experiments.table import ResultTable
from repro.plan import PREDICTED_STAGES, MergeNode, ShardScanNode

N_ROWS = 20000
N_QUERIES = 96
N_SHARDS = 4
K = 10
SEED = 0


def _observed(profile) -> float:
    """The device/host seconds the cost model claims to predict."""
    return float(sum(profile.get(stage) for stage in PREDICTED_STAGES))


def _band_workload():
    columns = make_adult_like(n=N_ROWS, seed=SEED)
    order = np.argsort(columns["age"], kind="stable")
    columns = {name: values[order] for name, values in columns.items()}
    rng = np.random.default_rng(SEED + 1)
    rows = rng.choice(N_ROWS, size=N_QUERIES, replace=True)
    queries = [
        {"age": (float(columns["age"][int(r)]) - 1.0,
                 float(columns["age"][int(r)]) + 1.0)}
        for r in rows
    ]
    return columns, queries


def _assert_identical(reference, other, context):
    for ref, got in zip(reference.results, other.results):
        assert np.array_equal(ref.ids, got.ids), context
        assert np.array_equal(ref.counts, got.counts), context
        assert ref.threshold == got.threshold, context


def test_cost_model(benchmark, emit, cost_coefficients):
    # The plan cache is off: a cache hit deliberately reuses the plan
    # (and predicted cost) priced for the *first* batch of its shape, so
    # warm-lane predictions go stale by design. This benchmark grades
    # the model, so every batch must be priced fresh; the cache's own
    # contract is covered by tests/plan/test_plan_cache.py.
    session = GenieSession(plan_cache_size=None)
    session.cost_coefficients = cost_coefficients

    columns, band_queries = _band_workload()
    band = session.create_index(
        columns, model="relational", schema=adult_schema(), name="adult",
        shards=N_SHARDS,
    )

    rng = np.random.default_rng(SEED)
    points = rng.normal(size=(8000, 16))
    ann_queries = list(
        points[rng.choice(8000, size=64, replace=False)]
        + 0.01 * rng.normal(size=(64, 16))
    )
    ann = session.create_index(
        points, model="ann-e2lsh", num_functions=32, dim=16, width=4.0,
        seed=0, domain=1024, name="ann", shards=8, shard_strategy="hash",
    )

    def replay():
        run = {"band_pred": [], "band_obs": [], "band_one": 0.0}
        for query in band_queries:
            auto = band.search([query], k=K)
            one = band.search([query], k=K, route="pruned", plan="one-round")
            _assert_identical(one, auto, "band auto")
            assert auto.predicted_cost is not None
            run["band_pred"].append(auto.predicted_cost)
            run["band_obs"].append(_observed(auto.profile))
            run["band_one"] += _observed(one.profile)
            run["band_plan"] = (auto.plan.find(MergeNode).strategy,
                                auto.routing.pruned_pairs)
        run["ann_auto"] = ann.search(ann_queries, k=50)
        run["ann_one"] = ann.search(ann_queries, k=50, plan="one-round")
        _assert_identical(run["ann_one"], run["ann_auto"], "ann auto")
        return run

    run = benchmark.pedantic(replay, rounds=1, iterations=1)

    band_pred = np.asarray(run["band_pred"])
    band_obs = np.asarray(run["band_obs"])
    band_err = np.abs(band_pred - band_obs) / band_obs
    band_auto_total = float(band_obs.sum())

    ann_auto, ann_one = run["ann_auto"], run["ann_one"]
    ann_obs = _observed(ann_auto.profile)
    ann_err = abs(ann_auto.predicted_cost - ann_obs) / ann_obs
    ann_scan = ann_auto.plan.find(ShardScanNode)
    ann_merge = ann_auto.plan.find(MergeNode)
    ann_speedup = _observed(ann_one.profile) / ann_obs

    accuracy = ResultTable(
        title="Cost model: predicted vs observed batch seconds (calibrated, seed=0)",
        columns=["workload", "batches", "mean_rel_err", "p90_rel_err",
                 "pred_total_us", "obs_total_us"],
        notes=[
            "Observed = the simulator's query_transfer+match+select+",
            "result_merge stage seconds; predicted = the chosen plan's",
            "priced critical path (SearchResult.predicted_cost). Band:",
            f"{N_QUERIES} single-query age-band batches, {N_SHARDS} range",
            "shards. ANN: one 64-query e2lsh batch, 8 hash shards, k=50.",
        ],
    )
    accuracy.add_row(
        workload="band-range", batches=len(band_obs),
        mean_rel_err=float(band_err.mean()),
        p90_rel_err=float(np.quantile(band_err, 0.9)),
        pred_total_us=float(band_pred.sum()) * 1e6,
        obs_total_us=band_auto_total * 1e6,
    )
    accuracy.add_row(
        workload="ann-hash", batches=1, mean_rel_err=float(ann_err),
        p90_rel_err=float(ann_err),
        pred_total_us=ann_auto.predicted_cost * 1e6,
        obs_total_us=ann_obs * 1e6,
    )

    choice = ResultTable(
        title="Costed auto vs forced one-round (bit-identical results asserted)",
        columns=["workload", "auto_plan", "one_round_us", "auto_us",
                 "speedup"],
        notes=[
            "auto_plan is what the calibrated planner picked with no",
            "directives. Band traffic concentrates postings in one shard",
            "(the busy shard always tops up), so auto must hold the",
            "pruned one-round plan; the even-spread ANN batch is TPUT's",
            "home turf, where auto must discover the two-round merge.",
        ],
    )
    band_merge, band_pruned = run["band_plan"]
    choice.add_row(
        workload="band-range",
        auto_plan=f"{band_merge} (pruned)",
        one_round_us=run["band_one"] * 1e6,
        auto_us=band_auto_total * 1e6,
        speedup=run["band_one"] / band_auto_total,
    )
    choice.add_row(
        workload="ann-hash",
        auto_plan=f"{ann_merge.strategy} (first_round_k={ann_scan.k})",
        one_round_us=_observed(ann_one.profile) * 1e6,
        auto_us=ann_obs * 1e6,
        speedup=ann_speedup,
    )
    emit(accuracy, choice)

    assert band_err.mean() <= 0.25, (
        f"band prediction error {band_err.mean():.2f} exceeds 25%"
    )
    assert ann_err <= 0.25, f"ann prediction error {ann_err:.2f} exceeds 25%"
    assert band_merge == "one-round" and band_pruned > 0, (
        "costed auto abandoned the pruned one-round plan on band traffic"
    )
    assert run["band_one"] / band_auto_total >= 0.95, (
        "costed auto regressed the band workload vs forced one-round"
    )
    assert ann_merge.strategy == "two-round-tput", (
        "costed auto failed to discover the two-round merge on even spread"
    )
    assert ann_speedup >= 1.3, (
        f"costed auto only {ann_speedup:.2f}x over one-round on TPUT's home workload"
    )
