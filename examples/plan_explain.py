"""Query planning: explain, route, and force strategies on skewed traffic.

Builds a Fig. 12-style skewed workload — an Adult-like table sorted by
age, range-partitioned across four simulated shard devices — and shows:

* ``handle.explain(...)`` rendering the compiled plan for a narrow
  age-band query (routed to the one shard holding its band) vs a forced
  ``route="broadcast"`` plan,
* that routed and broadcast execution return bit-identical results while
  the routed plan leaves the pruned shards untouched,
* the ``plan="two-round"`` TPUT merge escape hatch,
* cost-based ``auto``: after ``session.calibrate_cost_model()`` the
  planner prices the route x merge lattice per batch (``cost≈`` lines in
  ``explain()``), predicts each batch's device seconds, and the plan
  cache answers repeated query shapes with zero planning cost.

Run with: PYTHONPATH=src python examples/plan_explain.py
"""

import numpy as np

from repro.api import GenieSession
from repro.datasets.relational import adult_schema, make_adult_like

N_ROWS, N_SHARDS, K = 20_000, 4, 10


def main():
    columns = make_adult_like(n=N_ROWS, seed=0)
    order = np.argsort(columns["age"], kind="stable")
    columns = {name: values[order] for name, values in columns.items()}

    session = GenieSession()
    adult = session.create_index(
        columns, model="relational", schema=adult_schema(), name="adult",
        shards=N_SHARDS,
    )

    # A narrow age band lives in one shard of the age-sorted table.
    band = [{"age": (24.0, 26.0)}]

    print("pruned plan (the planner's default on range partitions):")
    print(adult.explain(band, k=K).render())
    print()
    print("forced broadcast plan:")
    print(adult.explain(band, k=K, route="broadcast").render())
    print()

    routed = adult.search(band, k=K)
    broadcast = adult.search(band, k=K, route="broadcast")
    assert np.array_equal(routed.results[0].ids, broadcast.results[0].ids)
    assert np.array_equal(routed.results[0].counts, broadcast.results[0].counts)
    print("routed and broadcast results are bit-identical (asserted)")
    print(f"routing: {routed.routing}")
    routed_busy = sum(p.query_total() for p in routed.shard_profiles)
    broadcast_busy = sum(p.query_total() for p in broadcast.shard_profiles)
    print(
        f"aggregate shard-device time: routed {routed_busy * 1e6:.2f}us "
        f"vs broadcast {broadcast_busy * 1e6:.2f}us "
        f"({routed.routing.pruned_fraction:.0%} of shard scans pruned)"
    )
    print()

    print("two-round TPUT merge (escape hatch):")
    tput = adult.search(band, k=K, plan="two-round")
    assert np.array_equal(routed.results[0].ids, tput.results[0].ids)
    print(tput.plan.render())
    print("still bit-identical (asserted)")
    print()

    print("calibrating the cost model against the simulated device…")
    session.calibrate_cost_model(seed=0)
    print("costed auto plan (priced, cost≈ lines):")
    print(adult.explain(band, k=K).render())
    costed = adult.search(band, k=K)
    observed = sum(
        costed.profile.get(stage)
        for stage in ("query_transfer", "match", "select", "result_merge")
    )
    assert np.array_equal(routed.results[0].ids, costed.results[0].ids)
    print(
        f"predicted {costed.predicted_cost * 1e6:.2f}us, "
        f"observed {observed * 1e6:.2f}us (still bit-identical, asserted)"
    )
    plan_route = session.host.timings.get("plan_route")
    adult.search(band, k=K)  # same query shape: warm plan-cache lane
    assert session.host.timings.get("plan_route") == plan_route
    print(
        "repeat of the same query shape hit the plan cache: "
        f"zero additional plan_route seconds "
        f"(cache stats: {session.plan_cache.stats()})"
    )


if __name__ == "__main__":
    main()
