"""Query planning: explain, route, and force strategies on skewed traffic.

Builds a Fig. 12-style skewed workload — an Adult-like table sorted by
age, range-partitioned across four simulated shard devices — and shows:

* ``handle.explain(...)`` rendering the compiled plan for a narrow
  age-band query (routed to the one shard holding its band) vs a forced
  ``route="broadcast"`` plan,
* that routed and broadcast execution return bit-identical results while
  the routed plan leaves the pruned shards untouched,
* the ``plan="two-round"`` TPUT merge escape hatch.

Run with: PYTHONPATH=src python examples/plan_explain.py
"""

import numpy as np

from repro.api import GenieSession
from repro.datasets.relational import adult_schema, make_adult_like

N_ROWS, N_SHARDS, K = 20_000, 4, 10


def main():
    columns = make_adult_like(n=N_ROWS, seed=0)
    order = np.argsort(columns["age"], kind="stable")
    columns = {name: values[order] for name, values in columns.items()}

    session = GenieSession()
    adult = session.create_index(
        columns, model="relational", schema=adult_schema(), name="adult",
        shards=N_SHARDS,
    )

    # A narrow age band lives in one shard of the age-sorted table.
    band = [{"age": (24.0, 26.0)}]

    print("pruned plan (the planner's default on range partitions):")
    print(adult.explain(band, k=K).render())
    print()
    print("forced broadcast plan:")
    print(adult.explain(band, k=K, route="broadcast").render())
    print()

    routed = adult.search(band, k=K)
    broadcast = adult.search(band, k=K, route="broadcast")
    assert np.array_equal(routed.results[0].ids, broadcast.results[0].ids)
    assert np.array_equal(routed.results[0].counts, broadcast.results[0].counts)
    print("routed and broadcast results are bit-identical (asserted)")
    print(f"routing: {routed.routing}")
    routed_busy = sum(p.query_total() for p in routed.shard_profiles)
    broadcast_busy = sum(p.query_total() for p in broadcast.shard_profiles)
    print(
        f"aggregate shard-device time: routed {routed_busy * 1e6:.2f}us "
        f"vs broadcast {broadcast_busy * 1e6:.2f}us "
        f"({routed.routing.pruned_fraction:.0%} of shard scans pruned)"
    )
    print()

    print("two-round TPUT merge (escape hatch):")
    tput = adult.search(band, k=K, plan="two-round")
    assert np.array_equal(routed.results[0].ids, tput.results[0].ids)
    print(tput.plan.render())
    print("still bit-identical (asserted)")


if __name__ == "__main__":
    main()
