"""Sharded multi-device search: same answers, critical-path latency.

Partitions one corpus across four simulated devices through the session
surface (``shards=4``), shows the per-shard profile slices and residency
accounting, verifies the results are bit-identical to an unsharded index,
and runs the core-level ``ShardedExecutor`` on the same data.

Run with: PYTHONPATH=src python examples/sharded_search.py
"""

import numpy as np

from repro.api import GenieSession
from repro.cluster import ShardedExecutor
from repro.core.types import Corpus, Query

M, DOMAIN, N_OBJECTS, N_QUERIES, K = 32, 1024, 12_000, 64, 10


def make_workload(seed=0):
    rng = np.random.default_rng(seed)
    base = np.arange(M) * DOMAIN
    objects = [base + rng.integers(0, DOMAIN, size=M) for _ in range(N_OBJECTS)]
    queries = [
        Query.from_keywords(base + rng.integers(0, DOMAIN, size=M))
        for _ in range(N_QUERIES)
    ]
    return objects, queries


def main():
    objects, queries = make_workload()

    # --- session surface: create_index(..., shards=N) -----------------
    session = GenieSession()
    plain = session.create_index(objects, model="raw", name="plain")
    sharded = session.create_index(
        objects, model="raw", name="sharded", shards=4, shard_strategy="hash"
    )
    print(f"shards: {sharded.num_shards}  (strategy {sharded.plan.strategy})")
    print(f"objects per shard: {sharded.plan.sizes()}")
    print(f"resident parts: {session.resident_parts()}")

    reference = plain.search(queries, k=K)
    result = sharded.search(queries, k=K)
    for expected, got in zip(reference.results, result.results):
        assert np.array_equal(expected.ids, got.ids)
        assert np.array_equal(expected.counts, got.counts)
    print("sharded results bit-identical to the unsharded index")

    single = reference.profile.query_total()
    critical = result.profile.query_total()
    print(f"unsharded batch: {single * 1e6:8.2f} simulated us")
    print(f"4-shard batch:   {critical * 1e6:8.2f} simulated us "
          f"({single / critical:.2f}x, critical path)")
    for position, profile in enumerate(result.shard_profiles):
        print(f"  shard {position}: {profile.query_total() * 1e6:7.2f} us "
              f"(match {profile.get('match') * 1e6:.2f} us)")
    print(f"host merge: {result.profile.get('result_merge') * 1e6:.2f} us")

    # --- core surface: ShardedExecutor without a session --------------
    executor = ShardedExecutor(4, strategy="range").fit(Corpus(objects))
    core_results = executor.query(queries, k=K)
    assert all(
        np.array_equal(a.ids, b.ids)
        for a, b in zip(core_results, reference.results)
    )
    print(f"ShardedExecutor (range partition) agrees; "
          f"critical path {executor.last_profile.query_total() * 1e6:.2f} us")


if __name__ == "__main__":
    main()
