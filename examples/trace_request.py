"""Deterministic request tracing: span trees and Chrome trace export.

Serves a few requests against a sharded, streaming index with the tracer
on (sample rate 1.0), prints one request's span tree — admission, queue
wait, batch ride, plan compile, per-shard scans, delta scans, merge —
and exports every retained trace as Chrome trace-event JSON for
chrome://tracing or https://ui.perfetto.dev.

Because every timestamp comes from the server's virtual clock and every
duration from the simulated device/host models, re-running this script
produces byte-identical traces.

Run:  python examples/trace_request.py
"""

from repro.api import GenieSession
from repro.serve import BatchPolicy, GenieServer
from repro.stream import StreamConfig

OUT = "trace_request.json"


def main():
    session = GenieSession()
    session.create_index(
        [[i, i + 1] for i in range(64)], model="raw", name="events",
        shards=2, stream_config=StreamConfig(auto_compact=False),
    )
    # Mutate the index so the trace shows the streaming stages too.
    session.index("events").insert([[3, 50], [40, 50]])
    session.index("events").delete([0])

    server = GenieServer(
        session, policy=BatchPolicy.micro(max_batch=8, max_wait=1e-3),
        cache_size=None, trace_sample=1,  # trace every request
    )
    futures = [server.submit("events", (3, 40), k=5) for _ in range(3)]
    server.drain()

    root = futures[0].metadata.trace
    print("One request's span tree (simulated milliseconds):\n")
    print(root.render())

    plan = root.find("plan")
    print(f"\nplanner predicted {plan.attrs.get('predicted_cost', 'n/a')} s "
          f"for this batch (cache_hit={plan.attrs['cache_hit']})")

    server.tracer.export_chrome_trace(OUT)
    print(f"\n{server.tracer.total_traces} traces exported to {OUT}")
    print("open chrome://tracing or https://ui.perfetto.dev and load the file")

    snapshot = server.snapshot()
    print(f"\ncost drift p50={snapshot['cost_drift_p50']:.3f} "
          f"p90={snapshot['cost_drift_p90']:.3f} "
          f"({snapshot['cost_drift_samples']} samples)")
    server.close()


if __name__ == "__main__":
    main()
