"""Two advanced features in one script, both on the unified session API:

1. ANN search in Laplacian-kernel space with Random Binning Hashing and
   re-hashing (the paper's OCR configuration, Section IV-A3).
2. Multi-loading: querying a dataset that is deliberately too large for a
   shrunken device's memory (Section III-D) — the session partitions the
   index with ``part_size`` and swaps the parts through its residency
   budget, which is observable in the returned profile.

Run:  python examples/kernel_ann_multiload.py
"""

import numpy as np

from repro.api import GenieSession
from repro.core.engine import GenieConfig
from repro.datasets.synthetic import make_ocr_like
from repro.gpu.device import Device
from repro.gpu.specs import small_device
from repro.lsh import LshTransformer, RandomBinningHash, estimate_kernel_width


def kernel_ann():
    dataset = make_ocr_like(n=4_000, n_queries=100, seed=0)
    sigma = estimate_kernel_width(dataset.data, seed=0)
    print(f"Laplacian kernel width (mean pairwise l1 distance): sigma = {sigma:.1f}")

    session = GenieSession()
    index = session.create_index(
        dataset.data, model="ann-rbh",
        num_functions=32, dim=dataset.dim, sigma=sigma, domain=1024, seed=1,
        name="ocr",
    )

    result = index.search(dataset.queries, k=1)
    predictions = [int(dataset.labels[r.ids[0]]) if len(r.ids) else -1 for r in result.results]
    accuracy = float(np.mean(np.asarray(predictions) == dataset.query_labels))
    print(f"1-NN classification accuracy via kernel ANN: {accuracy:.3f}\n")
    return dataset


def multiload(dataset):
    # A device shrunk to 2 MB cannot hold the whole index at once.
    device = Device(small_device(2 * 1024 * 1024))
    family = RandomBinningHash(num_functions=32, dim=dataset.dim,
                               sigma=estimate_kernel_width(dataset.data, seed=0), seed=1)
    transformer = LshTransformer(family, domain=1024, seed=1)
    corpus = transformer.to_corpus(dataset.data)

    # Residency budget below the full index size: parts must swap through.
    session = GenieSession(device=device, config=GenieConfig(k=5, count_bound=32),
                           memory_budget=192 * 1024)
    index = session.create_index(corpus, model="raw", part_size=1_000, name="oversized")
    print(f"dataset split into {index.num_parts} parts for a "
          f"{device.spec.global_mem_bytes >> 20} MB device "
          f"(index {index.device_bytes >> 10} KB, budget {session.memory_budget >> 10} KB)")

    queries = transformer.to_queries(dataset.queries[:16])
    result = index.search(queries, k=5)
    print(f"first query's neighbours: {result[0].as_pairs()}")
    print(f"parts swapped in: {result.swapped_in}; evictions: {len(result.evicted)}")
    profile = result.profile
    print(f"index swap-in time: {profile.get('index_transfer'):.3e} s; "
          f"host merge: {profile.get('result_merge'):.3e} s; "
          f"total: {profile.query_total():.3e} s")


if __name__ == "__main__":
    multiload(kernel_ann())
