"""One GenieSession, one device, four modalities — GENIE's whole pitch.

A single session holds a relational table, a tweet corpus, a DBLP-like
title index and an E2LSH ANN index concurrently on one simulated card,
under an explicit device-memory budget. Traffic then interleaves across
the indexes; when the budget is tightened below the working set, the
session's LRU residency starts swapping indexes through device memory —
every swap-in pays the paper's ``index_transfer`` stage and every eviction
is reported on the search result.

Run:  python examples/session_multimodal.py
"""

import numpy as np

from repro.api import GenieSession
from repro.datasets.documents import make_document_queries, make_tweets_like
from repro.datasets.sequences import make_dblp_like, make_query_set
from repro.datasets.synthetic import make_sift_like
from repro.sa.relational import AttributeSpec

BUDGET = 2 * 1024 * 1024  # 2 MB of device memory for index residency


def build_session() -> GenieSession:
    session = GenieSession(memory_budget=BUDGET)
    rng = np.random.default_rng(0)

    session.create_index(
        {"age": rng.uniform(18, 90, 4_000), "job": rng.integers(0, 12, 4_000)},
        model="relational",
        schema=[AttributeSpec("age", "numeric", bins=256), AttributeSpec("job", "categorical")],
        name="adult",
    )
    session.create_index(make_tweets_like(n=4_000, seed=1), model="document", name="tweets")
    session.create_index(make_dblp_like(n=2_000, seed=2), model="sequence", n=3, name="dblp")
    sift = make_sift_like(n=2_000, n_queries=8, seed=3)
    session.create_index(
        sift.data, model="ann-e2lsh",
        num_functions=32, dim=sift.dim, width=4.0, domain=67, seed=4,
        name="sift",
    )
    session.sift_queries = sift.queries  # stash for the traffic loop
    return session


def show(name: str, result) -> None:
    swaps = f"swap-ins {result.swapped_in}, evictions {len(result.evicted)}"
    evicted = ", ".join(f"{e.index}[{e.part}]" for e in result.evicted) or "-"
    print(f"  {name:<8} top: {result[0].as_pairs()[:2]}")
    print(f"           {swaps}; evicted: {evicted}; "
          f"transfer {result.profile.get('index_transfer'):.2e} s")


def traffic(session: GenieSession) -> None:
    tweets_q, _ = make_document_queries(make_tweets_like(n=4_000, seed=1), 2, seed=9)
    titles = make_dblp_like(n=2_000, seed=2)
    dblp_q, _ = make_query_set(titles, 2, fraction=0.2, seed=9)

    show("adult", session.index("adult").search([{"age": (30, 45), "job": (3, 5)}], k=5))
    show("tweets", session.index("tweets").search(tweets_q, k=3))
    result = session.index("dblp").search(dblp_q, k=1, n_candidates=16)
    best = result.payload[0].best
    if best is not None:
        print(f"  dblp     recovered {titles[best.sequence_id]!r} (distance {best.distance})")
    else:
        print("  dblp     no verified match for the first query")
    show("sift", session.index("sift").search(session.sift_queries, k=5))


def main():
    session = build_session()
    total = sum(session.index(name).device_bytes for name in session.indexes)
    print(f"4 indexes, {total >> 10} KB of index data, budget {BUDGET >> 10} KB "
          f"({session.resident_bytes >> 10} KB resident after builds)\n")

    print(f"All modalities resident together ({len(session.resident_parts())} parts):")
    traffic(session)

    # Tighten the budget below the working set: the same traffic now swaps.
    session.memory_budget = max(session.index(name).device_bytes for name in session.indexes)
    session.evict_all()
    print(f"\nBudget tightened to {session.memory_budget >> 10} KB — residency must rotate:")
    traffic(session)

    evictions = sum(1 for e in session.residency_log if e.kind == "evict")
    swapins = sum(1 for e in session.residency_log if e.kind == "attach")
    print(f"\nsession residency log: {swapins} attaches, {evictions} evictions")


if __name__ == "__main__":
    main()
