"""Replicated serving: survive a device crash, then heal the hot shard.

Builds a 4-shard index with 2 replicas per shard (chained declustering:
replica r of shard s lives on pool device (s + r) % 4), injects a
deterministic fault plan that permanently crashes one device mid-serve,
and shows the three availability mechanics in order:

1. **failover** — scans that hit the dead device retry on the surviving
   replica; the retry is charged on the batch critical path and the
   answers stay bit-identical to the fault-free run;
2. **re-replication** — the server notices the permanent failure and
   copies the stranded replicas onto live devices (an index_transfer,
   not a rebuild);
3. **rebalance** — a RebalancePolicy watches the rolling per-shard busy
   seconds and recuts a skewed range partition online.

Run:  python examples/replica_failover.py
"""

import numpy as np

from repro.api import GenieSession
from repro.replica import FaultEvent, FaultPlan, RebalancePolicy
from repro.serve import BatchPolicy, GenieServer

N, VOCAB, K = 2000, 500, 10


def make_workload(seed=0):
    rng = np.random.default_rng(seed)
    # keywords cluster near each object's sort position, so range
    # sharding can prune and a low-keyword query mix is genuinely hot
    base = np.sort(rng.integers(0, N, size=N))
    data = [
        np.unique(rng.integers(b, b + 40, size=10)).astype(np.int64)
        for b in base
    ]
    hot = [
        np.sort(rng.choice(N // 4, size=6, replace=False)).astype(np.int64)
        for _ in range(40)
    ]
    cold = [
        np.sort(rng.choice(N - 60, size=6, replace=False)).astype(np.int64)
        for _ in range(8)
    ]
    return data, hot + cold


def show_failover_event(data, queries):
    """A direct search during an outage: the retry is visible and priced."""
    session = GenieSession()
    index = session.create_index(
        data, model="raw", name="demo", shards=4, replicas=2
    )
    healthy = index.search([queries[0]], k=K)
    session.inject_faults(FaultPlan([FaultEvent(device=1, start=0.0)]))
    result = index.search([queries[0]], k=K)
    assert np.array_equal(
        np.asarray(result.ids), np.asarray(healthy.ids)
    ), "failover must not change answers"
    ev = result.failovers[0]
    print(
        f"failover: shard {ev.shard} attempt {ev.attempt} hit dead device "
        f"{ev.device} (permanent={ev.permanent}); retry penalty "
        f"{ev.penalty:.2e} s on the critical path"
    )
    print(f"the batch charged failover_retry = "
          f"{result.profile.get('failover_retry'):.2e} s, answers unchanged\n")
    session.close()


def main():
    data, queries = make_workload()
    show_failover_event(data, queries)

    session = GenieSession()
    index = session.create_index(
        data, model="raw", name="demo", shards=4, replicas=2
    )
    print("replica layout (shard -> pool devices):", index.replica_layout())

    # deterministic fault schedule: device 1 dies for good at t=2e-4 s
    session.inject_faults(FaultPlan([FaultEvent(device=1, start=2e-4)]))

    policy = RebalancePolicy(threshold=1.25, min_window=8, cooldown=16)
    server = GenieServer(
        session, policy=BatchPolicy.micro(max_batch=8, max_wait=1e-4),
        cache_size=None, rebalance=policy,
    )

    futures = []
    for repeat in range(3):
        for q in queries:
            server.advance(1e-5)
            futures.append(server.submit("demo", q, k=K))
    server.drain()

    for f in futures:
        f.result()  # zero failed futures: every request answered
    snap = server.snapshot()
    print(f"\nserved {snap['completed']} requests, 0 failed")
    print(f"failovers:        {snap['replica_failovers']}")
    print(f"re-replications:  {snap['replica_re_replications']}")
    print(f"rebalances:       {snap['replica_rebalances']}")
    print("layout after healing:", index.replica_layout())

    sizes = [len(p.corpus) for p in index._parts]
    print(f"\nshard sizes after recut: {sizes}")
    print("(the hot low range was split three ways; "
          "benchmarks/test_replica_failover.py runs the recut to convergence)")

    # the whole failure experiment is seeded: rerunning this script
    # reproduces every number above bit-for-bit
    server.close()
    session.close()


if __name__ == "__main__":
    main()
