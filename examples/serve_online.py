"""Online serving: micro-batched traffic against a multi-index session.

A `GenieServer` fronts a session holding a tweet corpus and an E2LSH ANN
index. Seeded open-loop traffic (Poisson arrivals, 70/30 mix) is replayed
under the two batching policies — `fifo` (one kernel launch per request)
and dynamic micro-batching — on the server's virtual clock, so every
number printed here is deterministic. The demo then shows the serving
amenities: per-request metadata, the exact-match cache, and bounded-queue
backpressure.

Run:  python examples/serve_online.py
"""

import numpy as np

from repro.api import GenieSession
from repro.datasets.documents import make_document_queries, make_tweets_like
from repro.datasets.synthetic import make_sift_like
from repro.errors import AdmissionError
from repro.serve import BatchPolicy, GenieServer, TrafficSource, run_open_loop, sample_trace

DOCS = make_tweets_like(n=2_000, seed=1)
DOC_POOL, _ = make_document_queries(DOCS, 32, seed=9)
SIFT = make_sift_like(n=2_000, n_queries=8, seed=3)


def build_session() -> GenieSession:
    session = GenieSession()
    session.create_index(DOCS, model="document", name="tweets")
    session.create_index(
        SIFT.data, model="ann-e2lsh", num_functions=32, dim=SIFT.dim,
        width=4.0, domain=256, seed=4, name="sift",
    )
    return session


def sources() -> list[TrafficSource]:
    return [
        TrafficSource("tweets", lambda rng: DOC_POOL[int(rng.integers(len(DOC_POOL)))],
                      weight=0.7, k=5),
        TrafficSource("sift", lambda rng: rng.standard_normal(SIFT.dim), weight=0.3, k=5),
    ]


def compare_policies() -> None:
    trace = sample_trace(sources(), n_requests=192, rate=5e7, seed=7)
    print("192 requests, 70% tweets / 30% sift, offered at 5e7 req/s:\n")
    for policy in (BatchPolicy.fifo(), BatchPolicy.micro(max_batch=32, max_wait=1e-4)):
        server = GenieServer(build_session(), policy=policy, cache_size=None,
                             max_queue_depth=1_000)
        run_open_loop(server, trace)
        snap = server.snapshot()
        print(f"  {policy.kind:<6} throughput {snap['throughput_qps']:>12,.0f} q/s   "
              f"p50 {snap['latency_p50']:.2e} s   p95 {snap['latency_p95']:.2e} s   "
              f"mean batch {snap['mean_batch_size']:.1f}")


def inspect_one_request() -> None:
    server = GenieServer(build_session(), policy=BatchPolicy.micro(max_batch=8, max_wait=1e-4))
    futures = server.submit_many("tweets", DOC_POOL[:8], k=5)
    server.drain()
    meta = futures[0].metadata
    print("\nOne request's metadata:")
    print(f"  rode a batch of {meta.batch_size}, queued {meta.queue_time:.2e} s, "
          f"latency {meta.latency:.2e} s")
    share = meta.profile_share()
    print(f"  its profile slice: {{"
          + ", ".join(f"{k}: {v:.2e}" for k, v in share.seconds.items()) + "}")

    # An exact repeat is a cache hit: answered with no device trip.
    repeat = server.submit("tweets", DOC_POOL[0], k=5)
    assert repeat.metadata.cache_hit
    assert np.array_equal(repeat.result().ids, futures[0].result().ids)
    print(f"  exact repeat: cache hit, batch_size={repeat.metadata.batch_size}, "
          f"latency {repeat.metadata.latency:.0f} s")


def backpressure() -> None:
    server = GenieServer(build_session(), policy=BatchPolicy.micro(max_batch=64, max_wait=1.0),
                         cache_size=None, max_queue_depth=4)
    for i in range(4):
        server.submit("tweets", DOC_POOL[i], k=5)
    try:
        server.submit("tweets", DOC_POOL[4], k=5)
    except AdmissionError as err:
        print(f"\nAdmission control: {err}")
    server.close()  # graceful: drains the 4 queued requests
    snap = server.snapshot()
    print(f"  after close: completed {snap['completed']}, rejected {snap['rejected']}, "
          f"queue depth {snap['queue_depth']}")


def main():
    compare_policies()
    inspect_one_request()
    backpressure()


if __name__ == "__main__":
    main()
