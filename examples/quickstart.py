"""Quickstart: GENIE's match-count model on the paper's running example.

Builds the Fig. 1 relational table through the unified session API, runs
the Q1 range query through the full simulated-GPU pipeline, and prints the
top-k with the per-stage time profile (Table-I style).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import GenieSession
from repro.sa.relational import AttributeSpec


def main():
    session = GenieSession()
    # The Fig. 1 table: three attributes A, B, C over three tuples.
    table = session.create_index(
        {
            "A": np.array([1, 2, 1]),
            "B": np.array([2, 1, 3]),
            "C": np.array([1, 2, 3]),
        },
        model="relational",
        schema=[
            AttributeSpec("A", "categorical"),
            AttributeSpec("B", "categorical"),
            AttributeSpec("C", "categorical"),
        ],
        name="fig1",
    )

    # Q1 of the paper: 1 <= A <= 2, B = 1, 2 <= C <= 3.
    result = table.search([{"A": (1, 2), "B": (1, 1), "C": (2, 3)}], k=3)

    print("Q1 = {A in [1,2], B = 1, C in [2,3]}")
    print("rank  object  match count")
    for rank, (obj, count) in enumerate(result[0].as_pairs(), start=1):
        print(f"{rank:>4}  O{obj + 1:<6} {count}")
    print()
    print("The top-1 is O2 with match count 3, as in Example 3.1 of the paper.")
    print(f"c-PQ's AuditThreshold certified the k-th count: {result[0].threshold}")

    print("\nSimulated pipeline profile (seconds):")
    for stage, seconds in sorted(result.profile.seconds.items()):
        print(f"  {stage:<16} {seconds:.3e}")


if __name__ == "__main__":
    main()
