"""Online ingest: mutate a live GENIE index without refitting it.

Builds a sharded index, then inserts / updates / deletes objects through
the handle while serving queries between every mutation. Shows the
segment manifest growing, the plan tree sprouting a ``DeltaScan`` node
(with the cost model pricing it), and a compaction folding the deltas
back into a fresh base — all answer-preserving.

Run:  python examples/streaming_ingest.py
"""

import numpy as np

from repro.api import GenieSession
from repro.stream import StreamConfig

VOCAB = 40
K = 5

# Hand-rolled stage-cost coefficients so explain() prices plans (a real
# deployment would use session.calibrate_cost_model()).
COEFFS = {
    "scan.const": 1e-6, "scan.queries": 1e-7, "scan.keywords": 1e-7,
    "scan.postings": 1e-8, "scan.gated": 1e-9, "scan.hot": 1e-7,
    "scan.width": 1e-9, "merge.const": 1e-7, "merge.ops": 1e-9,
    "topup.const": 1e-7, "topup.concentration": 1e-7,
}


def show(title, manifest):
    print(f"\n-- {title} --")
    for key, value in manifest.describe().items():
        print(f"  {key:>15}: {value}")


def main():
    rng = np.random.default_rng(3)
    corpus = [
        rng.integers(0, VOCAB, size=int(rng.integers(2, 6))).tolist()
        for _ in range(400)
    ]
    session = GenieSession()
    session.cost_coefficients = COEFFS
    handle = session.create_index(
        corpus, model="raw", name="live", shards=2,
        stream_config=StreamConfig(compact_ratio=0.25, auto_compact=False),
    )
    queries = [[1, 2, 3], [7, 8]]
    before = handle.search(queries, k=K)
    print("Clean plan (no mutations yet):")
    print(handle.explain(queries, k=K).render())

    gids = handle.insert([[1, 2, 39], [7, 8, 38]])
    handle.update(0, [1, 2, 3])
    handle.delete([5, 6])
    print(f"\nInserted objects got ids {gids.tolist()}; "
          "two deletes tombstoned, one base object rewritten in place.")
    show("manifest after 4 mutations", handle.manifest)

    print("\nDirty plan: the base Scan gains a costed DeltaScan sibling:")
    print(handle.explain(queries, k=K).render())

    streamed = handle.search(queries, k=K)
    print("\nStreamed answers (inserted ids join immediately):")
    for query, result in zip(queries, streamed.results):
        print(f"  {query} -> ids {result.ids.tolist()} "
              f"counts {result.counts.tolist()}")

    handle.compact()
    show("manifest after compact()", handle.manifest)
    compacted = handle.search(queries, k=K)
    assert all(
        np.array_equal(a.ids, b.ids) and np.array_equal(a.counts, b.counts)
        for a, b in zip(streamed.results, compacted.results)
    ), "compaction must not change any answer"
    print("\nPost-compaction answers bit-identical; plan is flat again:")
    print(handle.explain(queries, k=K).render())

    # The before/after of the whole session: the k-th count can only grow.
    for a, b in zip(before.results, compacted.results):
        assert b.threshold >= 0 and b.ids.size >= min(a.ids.size, K) - 2
    session.close()


if __name__ == "__main__":
    main()
