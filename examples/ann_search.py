"""tau-ANN search on SIFT-like vectors with E2LSH (Section IV of the paper).

Fits a GENIE ANN index over 8000 128-d points through the unified session
API (model ``"ann-e2lsh"``), runs a query batch, and evaluates recall and
the Eqn.-13 approximation ratio against exact k-NN. Also shows the theory
helpers: the Hoeffding m versus the practical m (Fig. 8), and the c/m
similarity estimate carried in the search payload.

Run:  python examples/ann_search.py
"""

import numpy as np

from repro.api import GenieSession
from repro.datasets.synthetic import make_sift_like, true_knn
from repro.experiments.metrics import batch_approximation_ratio, recall_at_k
from repro.lsh import hoeffding_m, practical_m

K = 10
M = 64  # scaled from the paper's 237 (= practical_m()) for speed


def main():
    print(f"Theory: Hoeffding bound m = {hoeffding_m()}; practical m = {practical_m()}")
    print(f"This example uses m = {M} functions, re-hashed into 67 buckets.\n")

    dataset = make_sift_like(n=8_000, n_queries=50, seed=0)
    session = GenieSession()
    index = session.create_index(
        dataset.data,
        model="ann-e2lsh",
        num_functions=M,
        dim=dataset.dim,
        width=4.0,
        domain=67,
        seed=1,
        name="sift",
    )

    result = index.search(dataset.queries, k=K)
    true_ids, true_d = true_knn(dataset.data, dataset.queries, K)

    recalls, reported = [], []
    for (ids, counts, estimates), tids, qp in zip(result.payload, true_ids, dataset.queries):
        recalls.append(recall_at_k(ids, tids))
        d = np.sort(np.linalg.norm(dataset.data[ids] - qp[None, :], axis=1))
        d = np.pad(d, (0, K - d.size), mode="edge") if d.size else np.full(K, np.inf)
        reported.append(d[:K])

    print(f"recall@{K}:           {np.mean(recalls):.3f}")
    print(f"approximation ratio: {batch_approximation_ratio(np.array(reported), true_d):.4f}")

    ids, counts, estimates = result.payload[0]
    print("\nFirst query's top-5 (count = colliding hash functions, c/m = similarity estimate):")
    for obj, count, est in list(zip(ids, counts, estimates))[:5]:
        print(f"  point {obj:>5}   count {count:>3}   c/m = {est:.3f}")

    profile = result.profile
    print(f"\nSimulated batch time: {profile.query_total():.3e} s "
          f"(match {profile.get('match'):.2e} s, select {profile.get('select'):.2e} s)")


if __name__ == "__main__":
    main()
