"""Typo correction with GENIE sequence search (Section V-A of the paper).

Indexes DBLP-like article titles as ordered 3-grams through the unified
session API, corrupts some of them (the paper's 20%-modification
protocol), and recovers the originals by shortlist retrieval +
edit-distance verification. The Theorem-5.2 certificate tells us when the
answer is provably the true nearest title.

Run:  python examples/sequence_error_correction.py
"""

from repro.api import GenieSession
from repro.datasets.sequences import make_dblp_like, make_query_set


def main():
    titles = make_dblp_like(n=4_000, seed=0)
    session = GenieSession()
    index = session.create_index(titles, model="sequence", n=3, name="dblp")

    queries, true_ids = make_query_set(titles, n_queries=8, fraction=0.2, seed=7)
    result = index.search(queries, k=1, n_candidates=32)

    correct = 0
    certified = 0
    for query, truth, verified in zip(queries, true_ids, result.payload):
        best = verified.best
        ok = best is not None and best.sequence_id == truth
        correct += ok
        certified += verified.certified
        marker = "+" if ok else "-"
        print(f"[{marker}] typo:      {query!r}")
        if best is not None:
            print(f"    recovered: {titles[best.sequence_id]!r} "
                  f"(edit distance {best.distance}, "
                  f"{'certified exact' if verified.certified else 'not certified'})")

    print(f"\nrecovered {correct}/{len(queries)} originals; "
          f"{certified}/{len(queries)} answers certified by Theorem 5.2")
    print(f"simulated retrieval + verification: {result.profile.query_total():.3e} s "
          f"(verify {result.profile.get('verify'):.2e} s)")

    # If a result is not certified, a larger K settles it (paper Table VII).
    for n_candidates in (8, 16, 32, 64, 128, 256):
        verified = index.search([queries[0]], k=1, n_candidates=n_candidates).payload[0]
        if verified.certified:
            break
    status = "certified at" if verified.certified else "still uncertified after"
    print(f"growing-K search {status} K = {verified.shortlist_size}")


if __name__ == "__main__":
    main()
