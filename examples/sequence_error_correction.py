"""Typo correction with GENIE sequence search (Section V-A of the paper).

Indexes DBLP-like article titles as ordered 3-grams, corrupts some of them
(the paper's 20%-modification protocol), and recovers the originals by
shortlist retrieval + edit-distance verification. The Theorem-5.2
certificate tells us when the answer is provably the true nearest title.

Run:  python examples/sequence_error_correction.py
"""

from repro.datasets.sequences import make_dblp_like, make_query_set
from repro.sa.sequence import SequenceIndex


def main():
    titles = make_dblp_like(n=4_000, seed=0)
    index = SequenceIndex(n=3).fit(titles)

    queries, true_ids = make_query_set(titles, n_queries=8, fraction=0.2, seed=7)

    correct = 0
    certified = 0
    for query, truth in zip(queries, true_ids):
        result = index.search(query, k=1, n_candidates=32)
        best = result.best
        ok = best is not None and best.sequence_id == truth
        correct += ok
        certified += result.certified
        marker = "+" if ok else "-"
        print(f"[{marker}] typo:      {query!r}")
        if best is not None:
            print(f"    recovered: {titles[best.sequence_id]!r} "
                  f"(edit distance {best.distance}, "
                  f"{'certified exact' if result.certified else 'not certified'})")

    print(f"\nrecovered {correct}/{len(queries)} originals; "
          f"{certified}/{len(queries)} answers certified by Theorem 5.2")

    # If a result is not certified, a larger K settles it (paper Table VII).
    result = index.search_until_certified(queries[0], k=1)
    print(f"search_until_certified used K = {result.shortlist_size}")


if __name__ == "__main__":
    main()
