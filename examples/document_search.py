"""Short-document search (Section V-B): tweets-like inner-product top-k.

Indexes Zipf-distributed short documents, then retrieves by binary
vector-space inner product — which is exactly what GENIE's match count
computes when documents are shredded into words.

Run:  python examples/document_search.py
"""

from repro.datasets.documents import make_document_queries, make_tweets_like
from repro.sa.document import DocumentIndex


def main():
    docs = make_tweets_like(n=8_000, seed=0)
    index = DocumentIndex().fit(docs)

    queries, source_ids = make_document_queries(docs, n_queries=3, drop_fraction=0.3, seed=5)

    for query, source in zip(queries, source_ids):
        print(f"query:  {query!r}")
        result = index.query_one(query, k=3)
        for rank, (doc_id, count) in enumerate(result.as_pairs(), start=1):
            origin = " <- source document" if doc_id == source else ""
            print(f"  {rank}. doc {doc_id:>5}  shared words {count}{origin}")
            print(f"     {docs[doc_id]!r}")
        print()

    profile = index.engine.last_profile
    print(f"simulated time for the last batch: {profile.query_total():.3e} s")


if __name__ == "__main__":
    main()
