"""Short-document search (Section V-B): tweets-like inner-product top-k.

Indexes Zipf-distributed short documents through the unified session API,
then retrieves by binary vector-space inner product — which is exactly
what GENIE's match count computes when documents are shredded into words.

Run:  python examples/document_search.py
"""

from repro.api import GenieSession
from repro.datasets.documents import make_document_queries, make_tweets_like


def main():
    docs = make_tweets_like(n=8_000, seed=0)
    session = GenieSession()
    index = session.create_index(docs, model="document", name="tweets")

    queries, source_ids = make_document_queries(docs, n_queries=3, drop_fraction=0.3, seed=5)
    result = index.search(queries, k=3)

    for query, source, top in zip(queries, source_ids, result.results):
        print(f"query:  {query!r}")
        for rank, (doc_id, count) in enumerate(top.as_pairs(), start=1):
            origin = " <- source document" if doc_id == source else ""
            print(f"  {rank}. doc {doc_id:>5}  shared words {count}{origin}")
            print(f"     {docs[doc_id]!r}")
        print()

    print(f"simulated time for the batch: {result.profile.query_total():.3e} s")


if __name__ == "__main__":
    main()
